#include "core/packed_kernel.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <memory>
#include <numeric>

#include "common/bits.hpp"
#include "common/contracts.hpp"
#include "core/brsmn.hpp"
#include "core/feedback.hpp"
#include "core/level_kernel.hpp"
#include "core/merge_lemmas.hpp"
#include "core/quasisort.hpp"
#include "core/route_plan.hpp"
#include "core/scatter.hpp"
#include "fault/fault_injector.hpp"
#include "fault/locate.hpp"
#include "fault/self_check.hpp"
#include "obs/fabric_heatmap.hpp"
#include "obs/perf_counters.hpp"
#include "obs/phase_timer.hpp"
#include "obs/route_probe.hpp"
#include "obs/tracer.hpp"

namespace brsmn::packed {

bool plane_get(std::span<const std::uint64_t> plane, std::size_t i) {
  return (plane[i / kWordBits] >> (i % kWordBits)) & 1u;
}

void plane_set(std::span<std::uint64_t> plane, std::size_t i, bool v) {
  const std::uint64_t bit = std::uint64_t{1} << (i % kWordBits);
  if (v) {
    plane[i / kWordBits] |= bit;
  } else {
    plane[i / kWordBits] &= ~bit;
  }
}

namespace {

/// Mask of bits [lo, hi) within one word, hi <= 64.
constexpr std::uint64_t word_range_mask(std::size_t lo, std::size_t hi) {
  const std::uint64_t upto =
      hi >= kWordBits ? ~std::uint64_t{0} : (std::uint64_t{1} << hi) - 1;
  return upto & ~((std::uint64_t{1} << lo) - 1);
}

}  // namespace

void plane_fill(std::span<std::uint64_t> plane, std::size_t first,
                std::size_t last) {
  if (first >= last) return;
  const std::size_t fw = first / kWordBits;
  const std::size_t lw = (last - 1) / kWordBits;
  if (fw == lw) {
    plane[fw] |= word_range_mask(first % kWordBits, last - fw * kWordBits);
    return;
  }
  plane[fw] |= word_range_mask(first % kWordBits, kWordBits);
  for (std::size_t w = fw + 1; w < lw; ++w) plane[w] = ~std::uint64_t{0};
  plane[lw] |= word_range_mask(0, last - lw * kWordBits);
}

std::size_t plane_popcount(std::span<const std::uint64_t> plane,
                           std::size_t first, std::size_t last) {
  if (first >= last) return 0;
  const std::size_t fw = first / kWordBits;
  const std::size_t lw = (last - 1) / kWordBits;
  if (fw == lw) {
    return static_cast<std::size_t>(std::popcount(
        plane[fw] & word_range_mask(first % kWordBits, last - fw * kWordBits)));
  }
  std::size_t total = static_cast<std::size_t>(
      std::popcount(plane[fw] & word_range_mask(first % kWordBits, kWordBits)));
  for (std::size_t w = fw + 1; w < lw; ++w) {
    total += static_cast<std::size_t>(std::popcount(plane[w]));
  }
  total += static_cast<std::size_t>(
      std::popcount(plane[lw] & word_range_mask(0, last - lw * kWordBits)));
  return total;
}

PackedLines::PackedLines(std::size_t n, std::size_t width)
    : n_(n),
      width_(width),
      wpl_(words_for(n)),
      stride_(plane_stride_for(n)),
      words_(width * stride_, 0) {
  BRSMN_EXPECTS(is_pow2(n) && n >= 2);
}

std::uint64_t PackedLines::get(std::size_t line, std::size_t first_plane,
                               std::size_t count) const {
  BRSMN_EXPECTS(line < n_ && first_plane + count <= width_ && count <= 64);
  const std::size_t w = line / kWordBits;
  const std::size_t b = line % kWordBits;
  std::uint64_t value = 0;
  for (std::size_t p = 0; p < count; ++p) {
    value |= ((words_[(first_plane + p) * stride_ + w] >> b) & 1u) << p;
  }
  return value;
}

void PackedLines::set(std::size_t line, std::size_t first_plane,
                      std::size_t count, std::uint64_t value) {
  BRSMN_EXPECTS(line < n_ && first_plane + count <= width_ && count <= 64);
  const std::size_t w = line / kWordBits;
  const std::uint64_t bit = std::uint64_t{1} << (line % kWordBits);
  for (std::size_t p = 0; p < count; ++p) {
    std::uint64_t& word = words_[(first_plane + p) * stride_ + w];
    if ((value >> p) & 1u) {
      word |= bit;
    } else {
      word &= ~bit;
    }
  }
}

void PackedLines::clear() { std::fill(words_.begin(), words_.end(), 0); }

void apply_stage_plane(std::span<const std::uint64_t> in,
                       std::span<std::uint64_t> out, const StageMasks& masks,
                       std::size_t pair_distance) {
  const std::size_t words = in.size();
  if (pair_distance < kWordBits) {
    // Pairs live within one word: blocks of 2*d lines are 2*d-aligned and
    // 2*d divides 64, so a shift never crosses a word boundary.
    const auto d = static_cast<unsigned>(pair_distance);
    for (std::size_t w = 0; w < words; ++w) {
      const std::uint64_t su = masks.su[w];
      const std::uint64_t sl = masks.sl[w];
      out[w] = (in[w] & ~(su | sl)) | ((in[w] >> d) & su) | ((in[w] << d) & sl);
    }
    return;
  }
  const std::size_t offset = pair_distance / kWordBits;
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t x = in[w] & ~(masks.su[w] | masks.sl[w]);
    if (w + offset < words) x |= in[w + offset] & masks.su[w];
    if (w >= offset) x |= in[w - offset] & masks.sl[w];
    out[w] = x;
  }
}

void apply_stage(PackedLines& state, PackedLines& scratch,
                 const StageMasks& masks, std::size_t pair_distance,
                 const simd::SimdOps& ops) {
  BRSMN_EXPECTS(scratch.size() == state.size() &&
                scratch.width() == state.width());
  const std::size_t stride = state.plane_stride();
  BRSMN_EXPECTS(masks.su.size() >= stride && masks.sl.size() >= stride);
  if (pair_distance < kWordBits) {
    // In-word variant: one sweep over the whole plane-major state, pads
    // included (mask pads are zero, so scratch pads come out zero).
    ops.stage_shift(state.words().data(), scratch.words().data(),
                    masks.su.data(), masks.sl.data(), state.width(), stride,
                    static_cast<unsigned>(pair_distance));
  } else {
    // Word-offset variant: per plane, only the logical words are written;
    // scratch pads keep the zeros the double-buffer invariant guarantees.
    ops.stage_offset(state.words().data(), scratch.words().data(),
                     masks.su.data(), masks.sl.data(), state.width(), stride,
                     state.words_per_plane(), pair_distance / kWordBits);
  }
  state.swap(scratch);
}

void apply_stage(PackedLines& state, PackedLines& scratch,
                 const StageMasks& masks, std::size_t pair_distance) {
  apply_stage(state, scratch, masks, pair_distance, simd::ops());
}

namespace {

/// Spread the low 32 bits of x to the even bit positions.
constexpr std::uint64_t morton_expand(std::uint64_t x) {
  x &= 0x00000000ffffffffull;
  x = (x | (x << 16)) & 0x0000ffff0000ffffull;
  x = (x | (x << 8)) & 0x00ff00ff00ff00ffull;
  x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0full;
  x = (x | (x << 2)) & 0x3333333333333333ull;
  x = (x | (x << 1)) & 0x5555555555555555ull;
  return x;
}

/// Gather the even bit positions of x into the low 32 bits.
constexpr std::uint64_t morton_compress(std::uint64_t x) {
  x &= 0x5555555555555555ull;
  x = (x | (x >> 1)) & 0x3333333333333333ull;
  x = (x | (x >> 2)) & 0x0f0f0f0f0f0f0f0full;
  x = (x | (x >> 4)) & 0x00ff00ff00ff00ffull;
  x = (x | (x >> 8)) & 0x0000ffff0000ffffull;
  x = (x | (x >> 16)) & 0x00000000ffffffffull;
  return x;
}

}  // namespace

void shuffle_planes(const PackedLines& in, PackedLines& out) {
  BRSMN_EXPECTS(out.size() == in.size() && out.width() == in.width());
  const std::size_t n = in.size();
  const std::size_t wpl = in.words_per_plane();
  const std::size_t half = n / 2;
  for (std::size_t p = 0; p < in.width(); ++p) {
    const auto src = in.plane(p);
    auto dst = out.plane(p);
    if (wpl == 1) {
      const std::uint64_t lo = src[0] & word_range_mask(0, half);
      const std::uint64_t hi = src[0] >> half;
      dst[0] = morton_expand(lo) | (morton_expand(hi) << 1);
      continue;
    }
    // n >= 128: the halves are whole word ranges.
    for (std::size_t k = 0; k < wpl / 2; ++k) {
      const std::uint64_t lo = src[k];
      const std::uint64_t hi = src[wpl / 2 + k];
      dst[2 * k] = morton_expand(lo) | (morton_expand(hi) << 1);
      dst[2 * k + 1] = morton_expand(lo >> 32) | (morton_expand(hi >> 32) << 1);
    }
  }
}

void unshuffle_planes(const PackedLines& in, PackedLines& out) {
  BRSMN_EXPECTS(out.size() == in.size() && out.width() == in.width());
  const std::size_t n = in.size();
  const std::size_t wpl = in.words_per_plane();
  const std::size_t half = n / 2;
  for (std::size_t p = 0; p < in.width(); ++p) {
    const auto src = in.plane(p);
    auto dst = out.plane(p);
    if (wpl == 1) {
      dst[0] = morton_compress(src[0]) | (morton_compress(src[0] >> 1) << half);
      continue;
    }
    for (std::size_t k = 0; k < wpl / 2; ++k) {
      const std::uint64_t even = src[2 * k];
      const std::uint64_t odd = src[2 * k + 1];
      dst[k] = morton_compress(even) | (morton_compress(odd) << 32);
      dst[wpl / 2 + k] =
          morton_compress(even >> 1) | (morton_compress(odd >> 1) << 32);
    }
  }
}

void CountPyramid::build(std::span<const std::uint64_t> indicator,
                         std::size_t n, const simd::SimdOps* ops) {
  BRSMN_EXPECTS(is_pow2(n) && n >= 2);
  const std::size_t wpl = words_for(n);
  BRSMN_EXPECTS(indicator.size() == wpl);
  n_ = n;
  levels_ = log2_exact(n);
  const int in_word = std::min(levels_, 6);
  // Resize-reuse: every word below is fully overwritten by the cascade,
  // so rebuilding with held capacity allocates nothing.
  packed_.resize(static_cast<std::size_t>(in_word));
  std::uint64_t* level_words[6] = {};
  for (int j = 0; j < in_word; ++j) {
    packed_[static_cast<std::size_t>(j)].resize(wpl);
    level_words[j] = packed_[static_cast<std::size_t>(j)].data();
  }
  const simd::SimdOps& o =
      ops != nullptr ? *ops : simd::ops(simd::Backend::Portable);
  o.count_cascade(indicator.data(), level_words, in_word, wpl);
  if (levels_ <= 6) {
    coarse_.clear();
  } else {
    // Level 7 aggregates whole-word totals (the level-6 fields).
    const auto& word_totals = packed_[5];
    coarse_.resize(static_cast<std::size_t>(levels_ - 6));
    coarse_[0].resize(n >> 7);
    for (std::size_t b = 0; b < coarse_[0].size(); ++b) {
      coarse_[0][b] = static_cast<std::uint32_t>(word_totals[2 * b] +
                                                 word_totals[2 * b + 1]);
    }
    for (int j = 8; j <= levels_; ++j) {
      const auto& child = coarse_[static_cast<std::size_t>(j - 8)];
      auto& cur = coarse_[static_cast<std::size_t>(j - 7)];
      cur.resize(child.size() / 2);
      for (std::size_t b = 0; b < cur.size(); ++b) {
        cur[b] = child[2 * b] + child[2 * b + 1];
      }
    }
  }
}

std::size_t CountPyramid::count(int level, std::size_t block) const {
  BRSMN_EXPECTS(level >= 1 && level <= levels_);
  BRSMN_EXPECTS(block < (n_ >> level));
  if (level > 6) return coarse_[static_cast<std::size_t>(level - 7)][block];
  const std::uint64_t word =
      packed_[static_cast<std::size_t>(level - 1)][block >> (6 - level)];
  const std::size_t field = block & ((std::size_t{1} << (6 - level)) - 1);
  const unsigned shift = static_cast<unsigned>(field) << level;
  const std::uint64_t mask = level == 6
                                 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << (1u << level)) - 1;
  return static_cast<std::size_t>((word >> shift) & mask);
}

std::size_t CountPyramid::total() const { return count(levels_, 0); }

void TagCensus::build(std::span<const std::uint64_t> t0,
                      std::span<const std::uint64_t> t1,
                      std::span<const std::uint64_t> t2, std::size_t n,
                      const simd::SimdOps& ops) {
  BRSMN_EXPECTS(is_pow2(n) && n >= 2);
  const std::size_t wpl = words_for(n);
  BRSMN_EXPECTS(t0.size() == wpl && t1.size() == wpl && t2.size() == wpl);
  n_ = n;
  wpl_ = wpl;
  levels_ = log2_exact(n);
  // Resize-reuse: every entry below is fully overwritten each build.
  alpha_.resize(wpl);
  eps_.resize(wpl);
  ones_.resize(wpl);
  step_.resize(wpl);
  ops.census_split(t0.data(), t1.data(), t2.data(), alpha_.data(), eps_.data(),
                   ones_.data(), wpl);
  const std::uint64_t* planes[3] = {alpha_.data(), eps_.data(), ones_.data()};
  const std::size_t n1 = n >> 1;
  for (int c = 0; c < 3; ++c) {
    counts_[c].resize(n - 1);
    std::uint32_t* flat = counts_[c].data();
    // Level 1 (pair counts): one cascade step packs 32 two-bit pair
    // fields per word; spill them to uint32 so every coarser level is a
    // straight pairwise vector sum.
    std::uint64_t* step = step_.data();
    ops.count_cascade(planes[c], &step, 1, wpl);
    for (std::size_t w = 0; w < wpl; ++w) {
      const std::uint64_t fields = step_[w];
      const std::size_t base = 32 * w;
      const std::size_t lim = std::min<std::size_t>(32, n1 - base);
      for (std::size_t f = 0; f < lim; ++f) {
        flat[base + f] = static_cast<std::uint32_t>((fields >> (2 * f)) & 3u);
      }
    }
    // Levels 2..log2(n): each level's counts start exactly where the
    // finer level's end, so src and dst never overlap.
    for (int j = 2; j <= levels_; ++j) {
      ops.pair_sum_u32(flat + offset(j - 1), flat + offset(j), n >> j);
    }
  }
}

void select_prefix(std::span<const std::uint64_t> plane,
                   std::span<std::uint64_t> out, std::size_t first,
                   std::size_t last, std::size_t k) {
  if (k == 0 || first >= last) {
    BRSMN_EXPECTS(k == 0);
    return;
  }
  const std::size_t fw = first / kWordBits;
  const std::size_t lw = (last - 1) / kWordBits;
  for (std::size_t w = fw; w <= lw && k > 0; ++w) {
    const std::size_t lo = w == fw ? first % kWordBits : 0;
    const std::size_t hi = w == lw ? last - w * kWordBits : kWordBits;
    const std::uint64_t masked = plane[w] & word_range_mask(lo, hi);
    const auto cnt = static_cast<std::size_t>(std::popcount(masked));
    if (k >= cnt) {
      out[w] |= masked;
      k -= cnt;
      continue;
    }
    std::uint64_t rest = masked;
    for (std::size_t t = 0; t < k; ++t) rest &= rest - 1;
    out[w] |= masked ^ rest;
    k = 0;
  }
  BRSMN_ENSURES(k == 0);
}

}  // namespace brsmn::packed

// ---------------------------------------------------------------------------
// The packed route drivers. Both engines run the same per-level kernel:
// line state is transposed into bit-planes (a code identifying the packet
// plus the 3-bit tag encoding of Table 1), every configuration decision of
// the scalar algorithms is reproduced through the shared plan functions
// (scatter_block_plan / lemma1_geometry / elimination_layout), and the
// datapath applies whole stages as masked word shuffles. Broadcast events
// are precomputed during configuration; copy ids are assigned in exactly
// the order the scalar propagation would allocate them.
// ---------------------------------------------------------------------------

namespace brsmn {

// The kernel state itself (pkern::LevelKernel / BcastEvent) and the
// datapath entry points live in core/level_kernel.hpp so the compiled-
// plan replay path (core/route_plan.cpp) can restore a level from stored
// checkpoints and re-run exactly the same datapath code.
namespace pkern {

namespace pk = packed;

namespace {

/// Bit patterns of the identity code: plane p of line index i is
/// (i >> p) & 1, which within a word is a fixed pattern for p < 6 and a
/// per-word constant above.
constexpr std::uint64_t kIdentityPattern[6] = {
    0xaaaaaaaaaaaaaaaaull, 0xccccccccccccccccull, 0xf0f0f0f0f0f0f0f0ull,
    0xff00ff00ff00ff00ull, 0xffff0000ffff0000ull, 0xffffffff00000000ull,
};

/// encode() as a lookup keyed by the Tag's underlying value, so the
/// byte-staging loops stay branch-free (Table 1: ε and ε0 both 110).
constexpr std::uint8_t kTagEncoding[6] = {0b000, 0b001, 0b100,
                                          0b110, 0b110, 0b111};

}  // namespace

void load_identity_codes(LevelKernel& kx) {
  kx.state.clear();
  const std::size_t n = kx.n;
  const std::size_t wpl = kx.state.words_per_plane();
  for (std::size_t p = 0; p < kx.wcode; ++p) {
    auto plane = kx.state.plane(p);
    if (p < 6) {
      for (std::size_t w = 0; w < wpl; ++w) plane[w] = kIdentityPattern[p];
      plane[wpl - 1] &= pk::tail_mask(n);
    } else {
      for (std::size_t w = 0; w < wpl; ++w) {
        plane[w] = ((w >> (p - 6)) & 1u) ? ~std::uint64_t{0} : 0;
      }
    }
  }
}

/// Transpose the level's line state into the kernel's planes: codes are
/// the line indices, tags the Table 1 encoding (b0 = plane 0 of the tag
/// planes). All plane bits at positions >= n stay zero: the byte stage
/// buffer's tail bytes are zero, and the zero encoding contributes no
/// plane bits. One branch-free encode sweep plus one tag_pack transpose
/// replaces the three conditional bit-sets per line.
void load_lines(LevelKernel& kx, const std::vector<LineValue>& lines) {
  load_identity_codes(kx);
  const std::size_t n = kx.n;
  const std::size_t wpl = kx.state.words_per_plane();
  std::uint8_t* enc = kx.tag_bytes.data();
  for (std::size_t i = 0; i < n; ++i) {
    enc[i] = kTagEncoding[static_cast<std::uint8_t>(lines[i].tag)];
  }
  kx.ops->tag_pack(enc, kx.tag_plane(0).data(), kx.tag_plane(1).data(),
                   kx.tag_plane(2).data(), wpl);
}

/// Propagate the planes through the configured scatter stages. At each
/// broadcast switch the alpha input's code is latched before the stage
/// applies (it identifies the parent packet), then the two outputs are
/// overwritten with event codes and 0/1 tags — the packed equivalent of
/// apply_scatter_switch's copy emission.
void run_scatter_datapath(LevelKernel& kx) {
  const std::size_t n = kx.n;
  auto t0 = kx.tag_plane(0);
  auto t1 = kx.tag_plane(1);
  auto t2 = kx.tag_plane(2);
  for (int j = 1; j <= kx.stages; ++j) {
    const std::size_t d = std::size_t{1} << (j - 1);
    if (kx.heat != nullptr) {
      kx.heat->record_stage_tags(kx.heat_level, PassKind::Scatter, j, t0, t1);
    }
    auto& evs = kx.events[static_cast<std::size_t>(j - 1)];
    for (const BcastEvent& ev : evs) {
      const std::size_t alpha_line = ev.alpha_upper ? ev.upper : ev.upper + d;
      const std::size_t eps_line = ev.alpha_upper ? ev.upper + d : ev.upper;
      // The scalar apply_scatter_switch's alignment traps: the event site
      // must still see an alpha opposite an empty line (a corrupted
      // earlier stage can desynchronize the precomputed events).
      BRSMN_ENSURES_MSG(
          pk::plane_get(t0, alpha_line) && !pk::plane_get(t1, alpha_line),
          "broadcast switch without an alpha input");
      BRSMN_ENSURES_MSG(pk::plane_get(t0, eps_line) && pk::plane_get(t1, eps_line),
                        "broadcast switch would drop a live packet");
      const std::uint64_t code = kx.state.get(alpha_line, 0, kx.wcode);
      BRSMN_ENSURES(code < n);  // broadcasts never chain within a pass
      kx.parent_code[ev.ord] = static_cast<std::size_t>(code);
    }
    pk::apply_stage(kx.state, kx.scratch, kx.masks[static_cast<std::size_t>(j - 1)],
                    d, *kx.ops);
    // Planes moved: re-resolve the tag spans after the buffer swap.
    t0 = kx.tag_plane(0);
    t1 = kx.tag_plane(1);
    t2 = kx.tag_plane(2);
    for (const BcastEvent& ev : evs) {
      const std::size_t low = ev.upper + d;
      kx.state.set(ev.upper, 0, kx.wcode, n + 2 * ev.ord);
      kx.state.set(low, 0, kx.wcode, n + 2 * ev.ord + 1);
      pk::plane_set(t0, ev.upper, false);  // 0-copy: tag 000
      pk::plane_set(t1, ev.upper, false);
      pk::plane_set(t2, ev.upper, false);
      pk::plane_set(t0, low, false);  // 1-copy: tag 001
      pk::plane_set(t1, low, false);
      pk::plane_set(t2, low, true);
    }
  }
}

/// Propagate the planes through the configured unicast (quasisort) stages.
void run_unicast_datapath(LevelKernel& kx) {
  for (int j = 1; j <= kx.stages; ++j) {
    if (kx.heat != nullptr) {
      kx.heat->record_stage_tags(kx.heat_level, PassKind::Quasisort, j,
                                 kx.tag_plane(0), kx.tag_plane(1));
    }
    pk::apply_stage(kx.state, kx.scratch, kx.masks[static_cast<std::size_t>(j - 1)],
                    std::size_t{1} << (j - 1), *kx.ops);
  }
}

}  // namespace pkern

namespace {

namespace pk = packed;
using pkern::BcastEvent;
using pkern::LevelKernel;
using pkern::load_lines;
using pkern::run_scatter_datapath;
using pkern::run_unicast_datapath;

/// Decode the tag planes back into Tag values (one tag_unpack transpose
/// through the kernel's byte stage buffer instead of three bit probes
/// per line). `collapse` folds the 110 pattern to plain Eps — required
/// when materializing *scatter-pass outputs*, where 110 still means an
/// undivided ε (the scalar engine only introduces Eps0/Eps1 during
/// ε-division).
std::vector<Tag> materialize_tags(LevelKernel& kx, bool collapse) {
  std::vector<Tag> tags(kx.n);
  const std::size_t wpl = kx.state.words_per_plane();
  kx.ops->tag_unpack(kx.tag_plane(0).data(), kx.tag_plane(1).data(),
                     kx.tag_plane(2).data(), kx.tag_bytes.data(), wpl);
  for (std::size_t i = 0; i < kx.n; ++i) {
    const Tag t = decode(kx.tag_bytes[i]);
    tags[i] = collapse ? collapse_eps(t) : t;
  }
  return tags;
}

/// Set switches [first, first+count) of global block `gblock` at `stage`
/// in the datapath masks. Parallel runs need no bits.
void fill_masks(pk::StageMasks& mk, int stage, std::size_t gblock,
                std::size_t first, std::size_t count, SwitchSetting s) {
  if (count == 0 || s == SwitchSetting::Parallel) return;
  const std::size_t d = std::size_t{1} << (stage - 1);
  const std::size_t up = gblock * 2 * d + first;
  const std::size_t low = up + d;
  switch (s) {
    case SwitchSetting::Cross:
      pk::plane_fill(mk.su, up, up + count);
      pk::plane_fill(mk.sl, low, low + count);
      break;
    case SwitchSetting::UpperBcast:
      pk::plane_fill(mk.sl, low, low + count);
      break;
    case SwitchSetting::LowerBcast:
      pk::plane_fill(mk.su, up, up + count);
      break;
    case SwitchSetting::Parallel:
      break;
  }
}

/// Rebuild a workspace census from the kernel's current tag planes.
void build_census(pk::TagCensus& census, const LevelKernel& kx) {
  census.build(kx.tag_plane(0), kx.tag_plane(1), kx.tag_plane(2), kx.n,
               *kx.ops);
}

/// Slice the workspace kernel's first S mask rows into a plan capture.
/// The workspace kernel is sized for the widest level (m rows); rows past
/// the level's stage count are workspace padding, kept cleared, and must
/// not leak into the stored plan (replay and the plan tests expect
/// exactly S rows, as a per-level kernel would produce).
void capture_stage_masks(const LevelKernel& kx,
                         std::vector<pk::StageMasks>& dst) {
  dst.assign(kx.masks.begin(), kx.masks.begin() + kx.stages);
}

/// As capture_stage_masks, for the per-stage broadcast event lists.
void capture_stage_events(const LevelKernel& kx,
                          std::vector<std::vector<BcastEvent>>& dst) {
  dst.assign(kx.events.begin(), kx.events.begin() + kx.stages);
}

/// Word-parallel scatter configuration over the full width: the forward
/// phase reads per-node alpha/eps counts from the pyramids (with the
/// scalar combine()'s tie-type propagation: a zero-surplus node inherits
/// its upper child's type), the backward phase runs the shared
/// scatter_block_plan per node and emits contiguous setting runs into the
/// stage masks, the physical fabric (via `install`), the explain sink, and
/// the broadcast-event lists. All BSN roots start their runs at 0, exactly
/// as both scalar engines do. Root node values are returned for the
/// unrolled engine's Eq. (3) check.
template <typename InstallFn>
std::vector<ScatterNodeValue> configure_scatter_packed(
    pkern::CompileWorkspace& ws, const pk::TagCensus& census,
    RoutingStats* stats, const ExplainSink* explain, InstallFn&& install) {
  LevelKernel& kx = ws.kx;
  const std::size_t n = kx.n;
  const int S = kx.stages;

  // Flat type tree in the workspace: level j's n/2^j node types start at
  // 2n - n/2^(j-1) (level 0 at 0), so the forward sweep is two array
  // loads and a branchless select per node.
  ws.type.resize(2 * n - (n >> S));
  std::uint8_t* type = ws.type.data();
  const auto toff = [n](int j) {
    return j == 0 ? std::size_t{0} : 2 * n - (n >> (j - 1));
  };
  const auto alpha = census.alpha();
  for (std::size_t i = 0; i < n; ++i) {
    type[i] =
        static_cast<std::uint8_t>((alpha[i / 64] >> (i % 64)) & 1u);
  }
  for (int j = 1; j <= S; ++j) {
    const std::uint8_t* child = type + toff(j - 1);
    std::uint8_t* cur = type + toff(j);
    for (std::size_t b = 0; b < (n >> j); ++b) {
      const std::size_t na = census.count_alpha(j, b);
      const std::size_t ne = census.count_eps(j, b);
      // The scalar combine()'s tie-type propagation, branch-free: a
      // zero-surplus node inherits its upper child's type.
      cur[b] = na != ne ? static_cast<std::uint8_t>(na > ne) : child[2 * b];
    }
  }
  if (stats) {
    stats->tree_fwd_ops += n - (n >> S);
    stats->tree_bwd_ops += n - (n >> S);
  }

  auto node_value = [&](int j, std::size_t b) -> ScatterNodeValue {
    if (j == 0) {
      const bool a = pk::plane_get(census.alpha(), b);
      const bool e = pk::plane_get(census.eps(), b);
      return {a ? Tag::Alpha : Tag::Eps, (a || e) ? std::size_t{1} : 0};
    }
    const std::size_t na = census.count_alpha(j, b);
    const std::size_t ne = census.count_eps(j, b);
    return {type[toff(j) + b] ? Tag::Alpha : Tag::Eps,
            na >= ne ? na - ne : ne - na};
  };

  std::vector<std::size_t>& start = ws.start;
  std::vector<std::size_t>& next = ws.next;
  start.assign(n >> S, 0);
  for (int j = S; j >= 1; --j) {
    const std::size_t np = std::size_t{1} << j;
    const std::size_t half = np / 2;
    next.assign(n >> (j - 1), 0);
    auto& mk = kx.masks[static_cast<std::size_t>(j - 1)];
    auto& evs = kx.events[static_cast<std::size_t>(j - 1)];
    for (std::size_t b = 0; b < (n >> j); ++b) {
      const std::size_t s = start[b];
      const ScatterNodeValue c0 = node_value(j - 1, 2 * b);
      const ScatterNodeValue c1 = node_value(j - 1, 2 * b + 1);
      const ScatterBlockPlan plan = scatter_block_plan(c0, c1, np, s);
      next[2 * b] = plan.s0;
      next[2 * b + 1] = plan.s1;
      const std::size_t base_line = b << j;
      auto seg = [&](std::size_t first, std::size_t count, SwitchSetting w) {
        if (count == 0) return;
        install(j, b, first, count, w);
        fill_masks(mk, j, b, first, count, w);
      };
      if (plan.rule == RouteRule::ScatterAddition) {
        seg(0, plan.s1, plan.run);
        seg(plan.s1, half - plan.s1, opposite_unicast(plan.run));
      } else {
        const auto layout =
            lemmas::elimination_layout(np, s, plan.l, plan.ucast);
        const std::size_t rs = plan.run_start;
        const std::size_t rl = plan.run_len;
        const bool aup = plan.bcast == SwitchSetting::UpperBcast;
        if (rs + rl <= half) {
          seg(0, rs, layout.before);
          seg(rs, rl, plan.bcast);
          seg(rs + rl, half - rs - rl, layout.after);
          for (std::size_t t = rs; t < rs + rl; ++t) {
            evs.push_back({base_line + t, aup, 0});
          }
        } else {
          // The broadcast run wraps; this only happens in the binary
          // regimes of Lemmas 2-5, where both unicast fills agree.
          const std::size_t rem = rs + rl - half;
          BRSMN_ENSURES(layout.before == layout.after);
          seg(0, rem, plan.bcast);
          seg(rem, rs - rem, layout.before);
          seg(rs, half - rs, plan.bcast);
          for (std::size_t t = 0; t < rem; ++t) {
            evs.push_back({base_line + t, aup, 0});
          }
          for (std::size_t t = rs; t < half; ++t) {
            evs.push_back({base_line + t, aup, 0});
          }
        }
      }
      if (explain != nullptr) {
        const std::vector<SwitchSetting> settings =
            scatter_block_settings(plan, np, s);
        explain->record_block(j, b, settings, plan.rule);
      }
    }
    start.swap(next);
  }

  std::vector<ScatterNodeValue> roots(n >> S);
  for (std::size_t bb = 0; bb < roots.size(); ++bb) {
    roots[bb] = node_value(S, bb);
  }
  return roots;
}

/// Fix the copy-id allocation order of the collected broadcast events and
/// reserve their ids. The scalar engines allocate during propagation:
/// stage-major over the fabric for the feedback engine, and BSN-block-
/// major (each BSN fully routed before the next) for the unrolled engine.
/// The per-stage lists are already (stage, line)-ascending, so a stable
/// sort by BSN block reproduces the unrolled order exactly.
void finalize_events(LevelKernel& kx, bool bsn_block_major,
                     std::uint64_t& next_copy_id, RoutingStats* stats) {
  std::vector<BcastEvent*> flat;
  for (auto& stage : kx.events) {
    for (auto& ev : stage) flat.push_back(&ev);
  }
  if (bsn_block_major) {
    const int S = kx.stages;
    std::stable_sort(flat.begin(), flat.end(),
                     [S](const BcastEvent* a, const BcastEvent* b) {
                       return (a->upper >> S) < (b->upper >> S);
                     });
  }
  for (std::size_t r = 0; r < flat.size(); ++r) flat[r]->ord = r;
  kx.num_events = flat.size();
  kx.parent_code.assign(flat.size(), 0);
  kx.copy_id_base = next_copy_id;
  next_copy_id += 2 * flat.size();
  if (stats) stats->broadcast_ops += flat.size();
}

/// Word-parallel ε-division, per BSN block: the scalar greedy descent
/// hands the dummy-0 budget to the leftmost ε lines, so the first
/// n_eps0 ε bits of each block stay ε0 (110) and the rest gain the b2 bit
/// (ε1 = 111). Tree-op counters match the scalar sweep's closed form.
void divide_eps_packed(pkern::CompileWorkspace& ws,
                       const pk::TagCensus& census, RoutingStats* stats) {
  LevelKernel& kx = ws.kx;
  const std::size_t n = kx.n;
  const int S = kx.stages;
  const std::size_t np = std::size_t{1} << S;
  const std::size_t wpl = kx.state.words_per_plane();
  pk::Words& eps0_sel = ws.eps0_sel;
  std::fill(eps0_sel.begin(), eps0_sel.end(), 0);
  for (std::size_t bb = 0; bb < (n >> S); ++bb) {
    const std::size_t n_eps = census.count_eps(S, bb);
    const std::size_t n_one = census.count_ones(S, bb);
    const std::size_t n_zero = np - n_one - n_eps;
    BRSMN_EXPECTS_MSG(n_zero <= np / 2 && n_one <= np / 2,
                      "quasisort input must have at most n/2 zeros and ones");
    const std::size_t n_eps0 = n_eps - (np / 2 - n_one);
    pk::select_prefix(census.eps(), eps0_sel, bb * np, (bb + 1) * np, n_eps0);
  }
  auto t2 = kx.tag_plane(2);
  kx.ops->or_andnot(t2.data(), census.eps().data(), eps0_sel.data(), wpl);
  if (stats) {
    stats->tree_fwd_ops += n - (n >> S);
    stats->tree_bwd_ops += n - (n >> S);
  }
}

/// Word-parallel quasisort configuration: per BSN block a Theorem-1 bit
/// sort of the b2 keys with the 1-run starting at the midpoint, each merge
/// node solved by the shared lemma1_geometry.
template <typename InstallFn>
void configure_quasisort_packed(pkern::CompileWorkspace& ws,
                                const pk::TagCensus& census,
                                RoutingStats* stats,
                                const ExplainSink* explain,
                                InstallFn&& install) {
  LevelKernel& kx = ws.kx;
  const std::size_t n = kx.n;
  const int S = kx.stages;
  const std::size_t np = std::size_t{1} << S;
  for (std::size_t bb = 0; bb < (n >> S); ++bb) {
    BRSMN_EXPECTS_MSG(census.count_ones(S, bb) == np / 2,
                      "quasisort requires exactly n/2 (real+dummy) ones");
  }
  auto ones_at = [&](int j, std::size_t b) -> std::size_t {
    if (j == 0) return pk::plane_get(census.ones(), b) ? 1 : 0;
    return census.count_ones(j, b);
  };
  std::vector<std::size_t>& start = ws.start;
  std::vector<std::size_t>& next = ws.next;
  start.assign(n >> S, np / 2);
  for (int j = S; j >= 1; --j) {
    const std::size_t nprime = std::size_t{1} << j;
    const std::size_t half = nprime / 2;
    next.assign(n >> (j - 1), 0);
    auto& mk = kx.masks[static_cast<std::size_t>(j - 1)];
    for (std::size_t b = 0; b < (n >> j); ++b) {
      const std::size_t s = start[b];
      const std::size_t l0 = ones_at(j - 1, 2 * b);
      const std::size_t l1 = ones_at(j - 1, 2 * b + 1);
      const lemmas::Lemma1Geometry g = lemmas::lemma1_geometry(nprime, s, l0, l1);
      next[2 * b] = g.s0;
      next[2 * b + 1] = g.s1;
      install(j, b, std::size_t{0}, g.s1, g.run);
      install(j, b, g.s1, half - g.s1, opposite_unicast(g.run));
      fill_masks(mk, j, b, 0, g.s1, g.run);
      fill_masks(mk, j, b, g.s1, half - g.s1, opposite_unicast(g.run));
      if (explain != nullptr) {
        const std::vector<SwitchSetting> settings = binary_compact_setting(
            nprime, 0, g.s1, opposite_unicast(g.run), g.run);
        explain->record_block(j, b, settings, RouteRule::QuasisortMerge);
      }
    }
    start.swap(next);
  }
  if (stats) {
    stats->tree_fwd_ops += n - (n >> S);
    stats->tree_bwd_ops += n - (n >> S);
  }
}

/// Rebuild the level's LineValue vector from the planes after the
/// quasisort datapath: codes below n move the corresponding input packet;
/// event codes materialize the scalar engine's broadcast copies (0-copy on
/// the even code) from the latched parent packet. `lines` is replaced by
/// the gathered state via the workspace's double buffer; the tag decode
/// is one tag_unpack transpose instead of three bit probes per line.
void gather_lines(pkern::CompileWorkspace& ws, std::vector<LineValue>& lines) {
  LevelKernel& kx = ws.kx;
  const std::size_t n = kx.n;
  std::vector<LineValue>& prev = lines;
  std::vector<LineValue>& out = ws.line_buf;
  out.clear();
  out.resize(n);
  kx.ops->tag_unpack(kx.tag_plane(0).data(), kx.tag_plane(1).data(),
                     kx.tag_plane(2).data(), kx.tag_bytes.data(),
                     kx.state.words_per_plane());
  // One a_0 is consumed per level, so a line splits at most once per
  // level: once both of an event's copies are materialized its parent
  // packet is dead, and the second copy can steal the parent's stream
  // instead of duplicating it.
  std::vector<std::uint8_t>& first_side_done = ws.side_done;
  first_side_done.assign(kx.num_events, 0);
  for (std::size_t p = 0; p < n; ++p) {
    const Tag tag = decode(kx.tag_bytes[p]);
    if (is_empty(tag)) {
      out[p].tag = tag;
      continue;
    }
    const auto code = static_cast<std::size_t>(kx.state.get(p, 0, kx.wcode));
    if (code < n) {
      BRSMN_ENSURES_MSG(prev[code].packet.has_value(),
                        "packed gather: occupied line's code has no packet");
      out[p].tag = tag;
      out[p].packet = std::move(prev[code].packet);
      continue;
    }
    const std::size_t ev = (code - n) / 2;
    const std::size_t side = (code - n) % 2;
    BRSMN_ENSURES(ev < kx.num_events);
    BRSMN_ENSURES_MSG(prev[kx.parent_code[ev]].packet.has_value(),
                      "packed gather: broadcast parent packet missing");
    Packet& parent = *prev[kx.parent_code[ev]].packet;
    Packet copy{parent.source, kx.copy_id_base + 2 * ev + side,
                parent.copy_id, {}};
    if (first_side_done[ev] != 0) {
      copy.stream = std::move(parent.stream);
    } else {
      copy.stream = parent.stream;
      first_side_done[ev] = 1;
    }
    out[p] = occupied_line(tag, std::move(copy));
  }
  lines.swap(out);
}

/// Pack the tag planes of the line state entering the final 2x2-switch
/// level into the plan, for replay-time dead-line screening.
void capture_final_planes(const std::vector<LineValue>& lines,
                          RoutePlan& plan) {
  const std::size_t wpl = pk::words_for(lines.size());
  plan.final_t0.assign(wpl, 0);
  plan.final_t1.assign(wpl, 0);
  plan.final_t2.assign(wpl, 0);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::uint8_t enc = encode(lines[i].tag);
    if (enc & 0b100u) pk::plane_set(plan.final_t0, i, true);
    if (enc & 0b010u) pk::plane_set(plan.final_t1, i, true);
    if (enc & 0b001u) pk::plane_set(plan.final_t2, i, true);
  }
}

/// Copy the cold route's outputs into the plan once the route has fully
/// succeeded (called after the postcondition checks).
void capture_result(const RouteResult& result, RoutePlan& plan) {
  plan.delivered = result.delivered;
  plan.stats = result.stats;
  plan.broadcasts_per_level = result.broadcasts_per_level;
  plan.explanation = result.explanation;
}

/// One level's stats contribution: after - before, fieldwise (RoutingStats
/// has no operator-; every counter is monotone within a route).
RoutingStats stats_diff(const RoutingStats& after, const RoutingStats& before) {
  RoutingStats d;
  d.switch_traversals = after.switch_traversals - before.switch_traversals;
  d.broadcast_ops = after.broadcast_ops - before.broadcast_ops;
  d.tree_fwd_ops = after.tree_fwd_ops - before.tree_fwd_ops;
  d.tree_bwd_ops = after.tree_bwd_ops - before.tree_bwd_ops;
  d.fabric_passes = after.fabric_passes - before.fabric_passes;
  d.gate_delay = after.gate_delay - before.gate_delay;
  return d;
}

/// True when the tag planes loaded into `kx` equal the stored level's
/// entry checkpoint. Codes are identity-loaded per level, so every
/// configuration product of the level — census, scatter/quasisort plans,
/// masks, runs, events, ε-division, checkpoints — is a pure function of
/// these three planes: equality means the stored level can be adopted
/// verbatim.
bool entry_planes_match(LevelKernel& kx, const PlanLevel& old) {
  const auto t0 = kx.tag_plane(0);
  const auto t1 = kx.tag_plane(1);
  const auto t2 = kx.tag_plane(2);
  return std::equal(t0.begin(), t0.end(), old.entry_t0.begin(),
                    old.entry_t0.end()) &&
         std::equal(t1.begin(), t1.end(), old.entry_t1.begin(),
                    old.entry_t1.end()) &&
         std::equal(t2.begin(), t2.end(), old.entry_t2.begin(),
                    old.entry_t2.end());
}

/// The body of one unrolled switch level — scatter pass, quasisort pass,
/// gather — exactly as packed_route's level loop runs it. Shared with
/// planner::patch_route so a recompiled level of a patched plan goes
/// through the identical code path as a cold compile. The caller owns the
/// kernel construction (load_lines) and, when compiling a plan, the
/// PlanLevel's entry-plane capture.
void compile_level_unrolled(std::vector<Bsn>& level, std::size_t n, int k,
                            pkern::CompileWorkspace& ws,
                            std::vector<LineValue>& lines,
                            std::uint64_t& next_copy_id, PlanLevel* pl,
                            RouteResult& result, const RouteOptions& options,
                            obs::RouteProbe& probe, bool checking,
                            std::uint64_t route_ord) {
  LevelKernel& kx = ws.kx;
  const RoutingStats entry_stats = result.stats;
  const std::size_t splits_before = result.stats.broadcast_ops;
  const int S = kx.stages;
  const std::size_t bsn_size = std::size_t{1} << S;
  if (pl != nullptr) {
    // The configure callbacks partition every stage's n/2 switches, so
    // these defaults never survive — the rows exist so each callback run
    // is one fill into a pre-sized stage row.
    pl->scatter_settings.assign(
        static_cast<std::size_t>(S),
        std::vector<SwitchSetting>(n / 2, SwitchSetting::Parallel));
    pl->quasisort_settings.assign(
        static_cast<std::size_t>(S),
        std::vector<SwitchSetting>(n / 2, SwitchSetting::Parallel));
  }
  char level_label[24];
  std::snprintf(level_label, sizeof level_label, "level.%d", k);
  obs::TraceSpan level_span(probe.tracer, level_label);
  PassExplanation* scatter_pass = nullptr;
  PassExplanation* quasi_pass = nullptr;
  if (options.explain) {
    auto& passes = result.explanation->passes;
    passes.push_back(make_pass(k, PassKind::Scatter, n, S));
    passes.push_back(make_pass(k, PassKind::Quasisort, n, S));
    scatter_pass = &passes[passes.size() - 2];
    quasi_pass = &passes.back();
  }
  const ExplainSink scatter_sink{scatter_pass, 0};
  const ExplainSink quasi_sink{quasi_pass, 0};
  fault::PassSeam seam;
  seam.injector = options.faults;
  seam.activity = options.fault_activity;
  seam.route = route_ord;
  seam.net_width = n;
  seam.level = k;
  seam.impl = fault::ImplKind::Unrolled;
  seam.engine = RouteEngine::Packed;

  if (scatter_pass != nullptr) {
    std::vector<Tag> tags(n);
    for (std::size_t i = 0; i < n; ++i) tags[i] = lines[i].tag;
    scatter_sink.record_input_tags(tags);
  }

  pk::TagCensus& census = ws.census;
  std::vector<std::size_t>& in_zeros = ws.in_zeros;
  std::vector<std::size_t>& in_ones = ws.in_ones;
  std::vector<std::size_t>& in_alphas = ws.in_alphas;
  std::vector<std::size_t>& in_epses = ws.in_epses;
  in_zeros.resize(n >> S);
  in_ones.resize(n >> S);
  in_alphas.resize(n >> S);
  in_epses.resize(n >> S);

  // Pass 1: scatter — eliminate every alpha (paper Theorem 2).
  fault::guard(checking, n, route_ord, k, PassKind::Scatter, false, [&] {
    build_census(census, kx);

    // The scalar Bsn's entry contracts, per BSN block in block order.
    for (std::size_t bb = 0; bb < (n >> S); ++bb) {
      in_alphas[bb] = census.count_alpha(S, bb);
      in_epses[bb] = census.count_eps(S, bb);
      in_ones[bb] = census.count_ones(S, bb);
      in_zeros[bb] = bsn_size - in_alphas[bb] - in_epses[bb] - in_ones[bb];
      BRSMN_EXPECTS_MSG(in_zeros[bb] + in_alphas[bb] <= bsn_size / 2,
                        "BSN input violates n0 + n_alpha <= n/2 (Eq. 2)");
      BRSMN_EXPECTS_MSG(in_ones[bb] + in_alphas[bb] <= bsn_size / 2,
                        "BSN input violates n1 + n_alpha <= n/2 (Eq. 2)");
      for (std::size_t i = bb * bsn_size; i < (bb + 1) * bsn_size; ++i) {
        BRSMN_EXPECTS_MSG(
            lines[i].empty() == !lines[i].packet.has_value(),
            "occupied lines must carry a packet, eps lines none");
        if (lines[i].packet) {
          BRSMN_EXPECTS_MSG(
              !lines[i].packet->stream.empty() &&
                  lines[i].packet->stream.front() == lines[i].tag,
              "line tag must equal the packet's current a_0");
        }
      }
    }

    obs::PhaseTimer scatter_timer(probe.scatter);
    obs::PerfScope scatter_perf(probe.profiler, probe.perf_scatter);
    obs::TraceSpan scatter_span(probe.tracer, "bsn.scatter.config");
    const std::vector<ScatterNodeValue> roots = configure_scatter_packed(
        ws, census, &result.stats,
        scatter_pass != nullptr ? &scatter_sink : nullptr,
        [&](int j, std::size_t g, std::size_t first, std::size_t count,
            SwitchSetting s) {
          const std::size_t bb = g >> (S - j);
          const std::size_t lb = g & ((std::size_t{1} << (S - j)) - 1);
          level[bb].mutable_scatter_fabric().fill_block_run(j, lb, first,
                                                            count, s);
          if (pl != nullptr && count != 0) {
            auto& row = pl->scatter_settings[static_cast<std::size_t>(j - 1)];
            std::fill_n(row.begin() +
                            static_cast<std::ptrdiff_t>((g << (j - 1)) + first),
                        static_cast<std::ptrdiff_t>(count), s);
          }
        });
    scatter_span.end();
    scatter_perf.stop();
    scatter_timer.stop();
    for (const ScatterNodeValue& root : roots) {
      BRSMN_ENSURES_MSG(root.type == Tag::Eps || root.surplus == 0,
                        "Eq. (3) guarantees eps dominates at the BSN root");
    }
  });
  if (pl != nullptr) capture_stage_masks(kx, pl->scatter_masks);
  seam.apply_unrolled_packed(level, PassKind::Scatter, kx.masks);

  pk::TagCensus& mid = ws.mid;
  fault::guard(checking, n, route_ord, k, PassKind::Scatter, true, [&] {
    finalize_events(kx, /*bsn_block_major=*/true, next_copy_id,
                    &result.stats);
    obs::PhaseTimer scatter_datapath(probe.datapath);
    obs::TraceSpan scatter_data_span(probe.tracer, "bsn.scatter.datapath");
    run_scatter_datapath(kx);
    scatter_data_span.end();
    scatter_datapath.stop();
    result.stats.switch_traversals += (n / 2) * static_cast<std::size_t>(S);

    build_census(mid, kx);
    for (std::size_t bb = 0; bb < (n >> S); ++bb) {
      const std::size_t mid_alphas = mid.count_alpha(S, bb);
      const std::size_t mid_epses = mid.count_eps(S, bb);
      const std::size_t mid_ones = mid.count_ones(S, bb);
      const std::size_t mid_zeros =
          bsn_size - mid_alphas - mid_epses - mid_ones;
      BRSMN_ENSURES_MSG(mid_alphas == 0, "scatter must eliminate all alphas");
      BRSMN_ENSURES(mid_zeros == in_zeros[bb] + in_alphas[bb]);  // Eq. (4)
      BRSMN_ENSURES(mid_ones == in_ones[bb] + in_alphas[bb]);    // Eq. (4)
      BRSMN_ENSURES(mid_epses == in_epses[bb] - in_alphas[bb]);  // Eq. (4)
    }
  });
  if (pl != nullptr) {
    capture_stage_events(kx, pl->events);
    pl->num_events = kx.num_events;
    pl->parent_codes = kx.parent_code;
    pl->post_scatter.assign(kx.state.words().begin(),
                            kx.state.words().end());
  }

  // Pass 2: quasisort — ε-divide, then Theorem-1 bit sort on b2.
  fault::guard(checking, n, route_ord, k, PassKind::Quasisort, false, [&] {
    if (quasi_pass != nullptr) {
      quasi_sink.record_input_tags(materialize_tags(kx, /*collapse=*/true));
    }
    obs::PhaseTimer divide_timer(probe.eps_divide);
    obs::PerfScope divide_perf(probe.profiler, probe.perf_eps_divide);
    obs::TraceSpan divide_span(probe.tracer, "bsn.eps_divide");
    divide_eps_packed(ws, mid, &result.stats);
    divide_span.end();
    divide_perf.stop();
    divide_timer.stop();
    if (quasi_pass != nullptr) {
      quasi_sink.record_divided_tags(
          materialize_tags(kx, /*collapse=*/false));
    }

    kx.reset_pass();
    pk::TagCensus& divided = ws.divided;
    build_census(divided, kx);
    obs::PhaseTimer quasisort_timer(probe.quasisort);
    obs::PerfScope quasisort_perf(probe.profiler, probe.perf_quasisort);
    obs::TraceSpan quasisort_span(probe.tracer, "bsn.quasisort.config");
    configure_quasisort_packed(
        ws, divided, &result.stats,
        quasi_pass != nullptr ? &quasi_sink : nullptr,
        [&](int j, std::size_t g, std::size_t first, std::size_t count,
            SwitchSetting s) {
          const std::size_t bb = g >> (S - j);
          const std::size_t lb = g & ((std::size_t{1} << (S - j)) - 1);
          level[bb].mutable_quasisort_fabric().fill_block_run(j, lb, first,
                                                              count, s);
          if (pl != nullptr && count != 0) {
            auto& row =
                pl->quasisort_settings[static_cast<std::size_t>(j - 1)];
            std::fill_n(row.begin() +
                            static_cast<std::ptrdiff_t>((g << (j - 1)) + first),
                        static_cast<std::ptrdiff_t>(count), s);
          }
        });
    quasisort_span.end();
    quasisort_perf.stop();
    quasisort_timer.stop();
  });
  if (pl != nullptr) {
    pl->divided_t2.assign(kx.tag_plane(2).begin(), kx.tag_plane(2).end());
    capture_stage_masks(kx, pl->quasisort_masks);
  }
  seam.apply_unrolled_packed(level, PassKind::Quasisort, kx.masks);

  fault::guard(checking, n, route_ord, k, PassKind::Quasisort, true, [&] {
    obs::PhaseTimer sort_datapath(probe.datapath);
    obs::TraceSpan sort_data_span(probe.tracer, "bsn.quasisort.datapath");
    run_unicast_datapath(kx);
    sort_data_span.end();
    sort_datapath.stop();
    result.stats.switch_traversals += (n / 2) * static_cast<std::size_t>(S);

    // Postcondition: zeros (real or dummy) occupy the upper half of every
    // BSN, ones the lower half — the b2 plane decides, as in the scalar.
    const auto t2 = kx.tag_plane(2);
    for (std::size_t bb = 0; bb < (n >> S); ++bb) {
      const std::size_t base = bb * bsn_size;
      const std::size_t upper_ones =
          pk::plane_popcount(t2, base, base + bsn_size / 2);
      const std::size_t lower_ones =
          pk::plane_popcount(t2, base + bsn_size / 2, base + bsn_size);
      BRSMN_ENSURES_MSG(upper_ones == 0 && lower_ones == bsn_size / 2,
                        "quasisort output not split by halves");
    }
  });
  if (pl != nullptr) {
    pl->post_quasisort.assign(kx.state.words().begin(),
                              kx.state.words().end());
  }

  if (checking) {
    fault::guard(true, n, route_ord, k, std::nullopt, true, [&] {
      gather_lines(ws, lines);
      advance_streams(lines);
      fault::self_check_level(lines, k, route_ord);
    });
  } else {
    gather_lines(ws, lines);
    advance_streams(lines);
  }
  // All BSNs of one level route concurrently: charge the level's delay
  // once, not per block.
  result.stats.gate_delay += bsn_routing_delay(S);
  result.broadcasts_per_level.push_back(result.stats.broadcast_ops -
                                        splits_before);
  if (pl != nullptr) pl->stats_delta = stats_diff(result.stats, entry_stats);
}

/// The body of one feedback level (passes 2k-1 and 2k over the physical
/// fabric), shared with planner::patch_route like compile_level_unrolled.
void compile_level_feedback(Rbn& fabric, std::size_t n, int m, int k,
                            pkern::CompileWorkspace& ws,
                            std::vector<LineValue>& lines,
                            std::uint64_t& next_copy_id, PlanLevel* pl,
                            RouteResult& result, const RouteOptions& options,
                            obs::RouteProbe& probe, bool checking,
                            std::uint64_t route_ord) {
  LevelKernel& kx = ws.kx;
  const RoutingStats entry_stats = result.stats;
  const std::size_t splits_before = result.stats.broadcast_ops;
  const int top_stage = kx.stages;  // level-k BSN size is 2^top_stage
  if (pl != nullptr) {
    // As in compile_level_unrolled: pre-sized stage rows, fully
    // overwritten by the configure callbacks' runs.
    pl->scatter_settings.assign(
        static_cast<std::size_t>(top_stage),
        std::vector<SwitchSetting>(n / 2, SwitchSetting::Parallel));
    pl->quasisort_settings.assign(
        static_cast<std::size_t>(top_stage),
        std::vector<SwitchSetting>(n / 2, SwitchSetting::Parallel));
  }
  char level_label[24];
  std::snprintf(level_label, sizeof level_label, "level.%d", k);
  obs::TraceSpan level_span(probe.tracer, level_label);
  ExplainSink scatter_sink;
  ExplainSink quasi_sink;
  if (options.explain) {
    auto& passes = result.explanation->passes;
    passes.push_back(make_pass(k, PassKind::Scatter, n, top_stage));
    passes.push_back(make_pass(k, PassKind::Quasisort, n, top_stage));
    scatter_sink.pass = &passes[passes.size() - 2];
    quasi_sink.pass = &passes.back();
  }
  fault::PassSeam seam;
  seam.injector = options.faults;
  seam.activity = options.fault_activity;
  seam.route = route_ord;
  seam.net_width = n;
  seam.level = k;
  seam.impl = fault::ImplKind::Feedback;
  seam.engine = RouteEngine::Packed;

  // Pass 2k-1: the fabric acts as the level-k scatter networks.
  fault::guard(checking, n, route_ord, k, PassKind::Scatter, false, [&] {
    fabric.reset();
    if (scatter_sink.pass != nullptr) {
      std::vector<Tag> tags(n);
      for (std::size_t i = 0; i < n; ++i) tags[i] = lines[i].tag;
      scatter_sink.record_input_tags(tags);
    }
    build_census(ws.census, kx);
    obs::PhaseTimer scatter_timer(probe.scatter);
    obs::PerfScope scatter_perf(probe.profiler, probe.perf_scatter);
    obs::TraceSpan scatter_span(probe.tracer, "fb.scatter.config");
    configure_scatter_packed(
        ws, ws.census, &result.stats,
        scatter_sink.pass != nullptr ? &scatter_sink : nullptr,
        [&](int j, std::size_t g, std::size_t first, std::size_t count,
            SwitchSetting s) {
          fabric.fill_block_run(j, g, first, count, s);
          if (pl != nullptr && count != 0) {
            auto& row = pl->scatter_settings[static_cast<std::size_t>(j - 1)];
            std::fill_n(row.begin() +
                            static_cast<std::ptrdiff_t>((g << (j - 1)) + first),
                        static_cast<std::ptrdiff_t>(count), s);
          }
        });
  });
  if (pl != nullptr) capture_stage_masks(kx, pl->scatter_masks);
  seam.apply_full_packed(fabric, PassKind::Scatter, kx.masks);
  fault::guard(checking, n, route_ord, k, PassKind::Scatter, true, [&] {
    finalize_events(kx, /*bsn_block_major=*/false, next_copy_id,
                    &result.stats);
    obs::PhaseTimer scatter_datapath(probe.datapath);
    obs::TraceSpan scatter_data_span(probe.tracer, "fb.scatter.datapath");
    run_scatter_datapath(kx);
    scatter_data_span.end();
    scatter_datapath.stop();
  });
  if (pl != nullptr) {
    capture_stage_events(kx, pl->events);
    pl->num_events = kx.num_events;
    pl->parent_codes = kx.parent_code;
    pl->post_scatter.assign(kx.state.words().begin(),
                            kx.state.words().end());
  }
  // The scalar feedback datapath walks all m physical stages (stages
  // above top_stage are identity wiring).
  result.stats.switch_traversals += (n / 2) * static_cast<std::size_t>(m);
  ++result.stats.fabric_passes;
  // One scatter configuration sweep (all blocks concurrent) plus a full
  // traversal of the m-stage fabric.
  result.stats.gate_delay +=
      config_sweep_delay(top_stage) + datapath_delay(m);

  // Pass 2k: the fabric acts as the level-k quasisorting networks.
  fault::guard(checking, n, route_ord, k, PassKind::Quasisort, false, [&] {
    fabric.reset();
    kx.reset_pass();
    build_census(ws.mid, kx);
    if (quasi_sink.pass != nullptr) {
      quasi_sink.record_input_tags(materialize_tags(kx, /*collapse=*/true));
    }
    obs::TraceSpan quasi_config_span(probe.tracer, "fb.quasisort.config");
    obs::PhaseTimer divide_timer(probe.eps_divide);
    obs::PerfScope divide_perf(probe.profiler, probe.perf_eps_divide);
    obs::TraceSpan divide_span(probe.tracer, "fb.eps_divide");
    divide_eps_packed(ws, ws.mid, &result.stats);
    divide_span.end();
    divide_perf.stop();
    divide_timer.stop();
    if (quasi_sink.pass != nullptr) {
      quasi_sink.record_divided_tags(
          materialize_tags(kx, /*collapse=*/false));
    }
    build_census(ws.divided, kx);
    obs::PhaseTimer quasisort_timer(probe.quasisort);
    obs::PerfScope quasisort_perf(probe.profiler, probe.perf_quasisort);
    configure_quasisort_packed(
        ws, ws.divided, &result.stats,
        quasi_sink.pass != nullptr ? &quasi_sink : nullptr,
        [&](int j, std::size_t g, std::size_t first, std::size_t count,
            SwitchSetting s) {
          fabric.fill_block_run(j, g, first, count, s);
          if (pl != nullptr && count != 0) {
            auto& row =
                pl->quasisort_settings[static_cast<std::size_t>(j - 1)];
            std::fill_n(row.begin() +
                            static_cast<std::ptrdiff_t>((g << (j - 1)) + first),
                        static_cast<std::ptrdiff_t>(count), s);
          }
        });
  });
  if (pl != nullptr) {
    pl->divided_t2.assign(kx.tag_plane(2).begin(), kx.tag_plane(2).end());
    capture_stage_masks(kx, pl->quasisort_masks);
  }
  seam.apply_full_packed(fabric, PassKind::Quasisort, kx.masks);
  fault::guard(checking, n, route_ord, k, PassKind::Quasisort, true, [&] {
    obs::PhaseTimer sort_datapath(probe.datapath);
    obs::TraceSpan sort_data_span(probe.tracer, "fb.quasisort.datapath");
    run_unicast_datapath(kx);
    sort_data_span.end();
    sort_datapath.stop();
  });
  if (pl != nullptr) {
    pl->post_quasisort.assign(kx.state.words().begin(),
                              kx.state.words().end());
  }
  result.stats.switch_traversals += (n / 2) * static_cast<std::size_t>(m);
  ++result.stats.fabric_passes;
  // ε-divide sweep + quasisort sweep + full fabric traversal.
  result.stats.gate_delay +=
      2 * config_sweep_delay(top_stage) + datapath_delay(m);

  if (checking) {
    fault::guard(true, n, route_ord, k, std::nullopt, true, [&] {
      gather_lines(ws, lines);
      advance_streams(lines);
      fault::self_check_level(lines, k, route_ord);
    });
  } else {
    gather_lines(ws, lines);
    advance_streams(lines);
  }
  result.broadcasts_per_level.push_back(result.stats.broadcast_ops -
                                        splits_before);
  if (pl != nullptr) pl->stats_delta = stats_diff(result.stats, entry_stats);
}

/// The implementation-agnostic half of adopting a stored level during a
/// patch: restore the post-quasisort checkpoint and event bookkeeping,
/// re-emit the stored explanation passes, and advance the line state to
/// the level's stored outcome. Copy ids keep tracking the cold allocation
/// order because every preceding level — reused or recompiled — produced
/// exactly the events a cold compile of the new assignment would.
void reuse_level_state(const PlanLevel& old,
                       const RouteExplanation* base_explanation, std::size_t n,
                       int k, pkern::CompileWorkspace& ws,
                       std::vector<LineValue>& lines,
                       std::uint64_t& next_copy_id, RouteResult& result,
                       const RouteOptions& options, bool checking) {
  LevelKernel& kx = ws.kx;
  BRSMN_EXPECTS(old.post_quasisort.size() == kx.state.words().size());
  std::copy(old.post_quasisort.begin(), old.post_quasisort.end(),
            kx.state.words().begin());
  kx.num_events = old.num_events;
  kx.parent_code = old.parent_codes;
  kx.copy_id_base = next_copy_id;
  next_copy_id += 2 * old.num_events;
  if (options.explain) {
    // The stored passes are pure functions of the (matching) entry
    // planes, so copying them is bit-identical to re-deriving them.
    const auto& passes = base_explanation->passes;
    const std::size_t first = 2 * static_cast<std::size_t>(k - 1);
    result.explanation->passes.push_back(passes[first]);
    result.explanation->passes.push_back(passes[first + 1]);
  }
  if (checking) {
    fault::guard(true, n, 0, k, std::nullopt, true, [&] {
      gather_lines(ws, lines);
      advance_streams(lines);
      fault::self_check_level(lines, k, 0);
    });
  } else {
    gather_lines(ws, lines);
    advance_streams(lines);
  }
  result.stats += old.stats_delta;
  result.broadcasts_per_level.push_back(old.stats_delta.broadcast_ops);
}

/// Adopt one stored level verbatim on the unrolled network: install its
/// setting runs into the level's persistent grids (the runs partition
/// every stage's half-width, so this fully overwrites stale state and
/// matches a cold compile's grids), then restore the line state.
void reuse_level_unrolled(std::vector<Bsn>& level, const PlanLevel& old,
                          const RouteExplanation* base_explanation,
                          std::size_t n, int k, pkern::CompileWorkspace& ws,
                          std::vector<LineValue>& lines,
                          std::uint64_t& next_copy_id, RouteResult& result,
                          const RouteOptions& options, obs::RouteProbe& probe,
                          bool checking) {
  const int S = ws.kx.stages;
  char level_label[24];
  std::snprintf(level_label, sizeof level_label, "level.%d", k);
  obs::TraceSpan level_span(probe.tracer, level_label);
  // Each BSN owns the contiguous 2^(S-1)-wide slice of every level-wide
  // stage row, so installing a stored level is one copy per (BSN, stage).
  const std::size_t bsn_row = std::size_t{1} << (S - 1);
  for (int j = 1; j <= S; ++j) {
    const std::span<const SwitchSetting> srow(
        old.scatter_settings[static_cast<std::size_t>(j - 1)]);
    const std::span<const SwitchSetting> qrow(
        old.quasisort_settings[static_cast<std::size_t>(j - 1)]);
    for (std::size_t bb = 0; bb < level.size(); ++bb) {
      level[bb].mutable_scatter_fabric().install_stage(
          j, srow.subspan(bb * bsn_row, bsn_row));
      level[bb].mutable_quasisort_fabric().install_stage(
          j, qrow.subspan(bb * bsn_row, bsn_row));
    }
  }
  reuse_level_state(old, base_explanation, n, k, ws, lines, next_copy_id,
                    result, options, checking);
}

/// Adopt one stored level verbatim on the feedback fabric: both passes'
/// grids are installed (reset first, as in a cold pass) so the physical
/// fabric ends each level exactly as a cold compile leaves it.
void reuse_level_feedback(Rbn& fabric, const PlanLevel& old,
                          const RouteExplanation* base_explanation,
                          std::size_t n, int k, pkern::CompileWorkspace& ws,
                          std::vector<LineValue>& lines,
                          std::uint64_t& next_copy_id, RouteResult& result,
                          const RouteOptions& options, obs::RouteProbe& probe,
                          bool checking) {
  char level_label[24];
  std::snprintf(level_label, sizeof level_label, "level.%d", k);
  obs::TraceSpan level_span(probe.tracer, level_label);
  fabric.reset();
  for (std::size_t j = 0; j < old.scatter_settings.size(); ++j) {
    fabric.install_stage(static_cast<int>(j + 1), old.scatter_settings[j]);
  }
  fabric.reset();
  for (std::size_t j = 0; j < old.quasisort_settings.size(); ++j) {
    fabric.install_stage(static_cast<int>(j + 1), old.quasisort_settings[j]);
  }
  reuse_level_state(old, base_explanation, n, k, ws, lines, next_copy_id,
                    result, options, checking);
}

}  // namespace

RouteResult packed_route(Brsmn& net, const MulticastAssignment& assignment,
                         const RouteOptions& options, RoutePlan* plan) {
  const std::size_t n = net.n_;
  const int m = net.m_;
  obs::RouteProbe probe;
  obs::FabricHeatmap* heatmap = nullptr;
  if constexpr (obs::kEnabled) {
    if (options.metrics != nullptr) {
      probe = obs::RouteProbe::attach(*options.metrics, options.metrics_prefix);
    }
    probe.tracer = options.tracer;
    probe.attach_profiler(options.profiler);
    heatmap = options.heatmap;
  }
  obs::PhaseTimer total_timer(probe.total);
  obs::PerfScope total_perf(probe.profiler, probe.perf_total);
  obs::TraceSpan route_span(probe.tracer, "brsmn.route");

  RouteResult result;
  result.delivered.assign(n, std::nullopt);
  if (options.explain) {
    result.explanation.emplace();
    result.explanation->n = n;
  }

  if (plan != nullptr) {
    // A plan compiled while faults are armed would freeze corrupted
    // checkpoints — compile_route enforces this before delegating here.
    BRSMN_EXPECTS_MSG(options.faults == nullptr,
                      "cannot compile a route plan under fault injection");
    plan->n = n;
    plan->m = m;
    plan->impl = fault::ImplKind::Unrolled;
    plan->wcode = static_cast<std::size_t>(m) + 1;
    plan->levels.clear();
    plan->levels.reserve(static_cast<std::size_t>(m - 1));
  }

  const bool checking = options.self_check || options.faults != nullptr;
  if (options.faults != nullptr) {
    BRSMN_EXPECTS_MSG(options.faults->size() == n,
                      "fault plan width must match the network");
  }
  const std::uint64_t route_ord =
      options.faults != nullptr ? options.faults->begin_route() : 0;
  if (options.fault_activity != nullptr) options.fault_activity->clear();

  try {
  std::uint64_t next_copy_id = 1;
  std::vector<LineValue> lines = initial_lines(assignment, next_copy_id);

  // Per-network compile workspace: the widest-level kernel plus every
  // census/configuration buffer, allocated on the first route and reused
  // by every later compile and patch.
  if (net.compile_ws_ == nullptr) {
    net.compile_ws_ = std::make_unique<pkern::CompileWorkspace>(n, m);
  }
  pkern::CompileWorkspace& ws = *net.compile_ws_;
  pkern::LevelKernel& kx = ws.kx;
  kx.ops = &simd::ops(options.simd_backend);
  kx.heat = heatmap;

  for (int k = 1; k <= m - 1; ++k) {
    if (options.capture_levels) result.level_inputs.push_back(lines);
    fault::apply_dead_lines(options.faults, route_ord, k,
                            fault::ImplKind::Unrolled, RouteEngine::Packed,
                            lines, options.fault_activity);
    const int S = log2_exact(n >> (k - 1));
    kx.begin_level(S);
    kx.heat_level = k;
    load_lines(kx, lines);
    PlanLevel* pl = nullptr;
    if (plan != nullptr) {
      pl = &plan->levels.emplace_back();
      pl->stages = S;
      pl->entry_t0.assign(kx.tag_plane(0).begin(), kx.tag_plane(0).end());
      pl->entry_t1.assign(kx.tag_plane(1).begin(), kx.tag_plane(1).end());
      pl->entry_t2.assign(kx.tag_plane(2).begin(), kx.tag_plane(2).end());
    }
    compile_level_unrolled(net.levels_[static_cast<std::size_t>(k - 1)], n, k,
                           ws, lines, next_copy_id, pl, result, options,
                           probe, checking, route_ord);
  }

  if (options.capture_levels) result.level_inputs.push_back(lines);
  fault::apply_dead_lines(options.faults, route_ord, m,
                          fault::ImplKind::Unrolled, RouteEngine::Packed,
                          lines, options.fault_activity);
  if (plan != nullptr) capture_final_planes(lines, *plan);
  const std::size_t splits_before_final = result.stats.broadcast_ops;
  {
    obs::PhaseTimer final_timer(probe.datapath);
    obs::PerfScope final_perf(probe.profiler, probe.perf_datapath);
    obs::TraceSpan final_span(probe.tracer, "level.final");
    ExplainSink final_sink;
    if (options.explain) {
      result.explanation->passes.push_back(
          make_pass(m, PassKind::Final, n, 1));
      final_sink.pass = &result.explanation->passes.back();
    }
    fault::guard(checking, n, route_ord, m, PassKind::Final, true, [&] {
      deliver_final_level(lines, result.delivered, &result.stats,
                          options.explain ? &final_sink : nullptr, heatmap);
    });
  }
  result.broadcasts_per_level.push_back(result.stats.broadcast_ops -
                                        splits_before_final);

  const auto expected = expected_delivery(assignment);
  if (checking) {
    fault::self_check_delivery(result.delivered, expected, m, route_ord);
  }
  BRSMN_ENSURES_MSG(result.delivered == expected,
                    "BRSMN routed assignment incorrectly");
  } catch (const fault::FaultDetected& e) {
    if (options.explain && result.explanation.has_value()) {
      fault::rethrow_localized(net, e, *result.explanation);
    }
    throw;
  }
  if (plan != nullptr) capture_result(result, *plan);
  total_perf.stop();
  total_timer.stop();
  if constexpr (obs::kEnabled) {
    if (probe.enabled()) probe.record_stats(result.stats);
  }
  return result;
}

RouteResult packed_route(FeedbackBrsmn& net,
                         const MulticastAssignment& assignment,
                         const RouteOptions& options, RoutePlan* plan) {
  const std::size_t n = net.size();
  const int m = net.levels();
  obs::RouteProbe probe;
  obs::FabricHeatmap* heatmap = nullptr;
  if constexpr (obs::kEnabled) {
    if (options.metrics != nullptr) {
      probe = obs::RouteProbe::attach(*options.metrics, options.metrics_prefix);
    }
    probe.tracer = options.tracer;
    probe.attach_profiler(options.profiler);
    heatmap = options.heatmap;
  }
  obs::PhaseTimer total_timer(probe.total);
  obs::PerfScope total_perf(probe.profiler, probe.perf_total);
  obs::TraceSpan route_span(probe.tracer, "feedback.route");

  RouteResult result;
  result.delivered.assign(n, std::nullopt);
  if (options.explain) {
    result.explanation.emplace();
    result.explanation->n = n;
  }

  if (plan != nullptr) {
    BRSMN_EXPECTS_MSG(options.faults == nullptr,
                      "cannot compile a route plan under fault injection");
    plan->n = n;
    plan->m = m;
    plan->impl = fault::ImplKind::Feedback;
    plan->wcode = static_cast<std::size_t>(m) + 1;
    plan->levels.clear();
    plan->levels.reserve(static_cast<std::size_t>(m - 1));
  }

  const bool checking = options.self_check || options.faults != nullptr;
  if (options.faults != nullptr) {
    BRSMN_EXPECTS_MSG(options.faults->size() == n,
                      "fault plan width must match the network");
  }
  const std::uint64_t route_ord =
      options.faults != nullptr ? options.faults->begin_route() : 0;
  if (options.fault_activity != nullptr) options.fault_activity->clear();

  try {
  std::uint64_t next_copy_id = 1;
  std::vector<LineValue> lines = initial_lines(assignment, next_copy_id);

  // See the unrolled driver: per-network workspace, reused every route.
  if (net.compile_ws_ == nullptr) {
    net.compile_ws_ = std::make_unique<pkern::CompileWorkspace>(n, m);
  }
  pkern::CompileWorkspace& ws = *net.compile_ws_;
  pkern::LevelKernel& kx = ws.kx;
  kx.ops = &simd::ops(options.simd_backend);
  kx.heat = heatmap;

  for (int k = 1; k <= m - 1; ++k) {
    if (options.capture_levels) result.level_inputs.push_back(lines);
    fault::apply_dead_lines(options.faults, route_ord, k,
                            fault::ImplKind::Feedback, RouteEngine::Packed,
                            lines, options.fault_activity);
    const int top_stage = m - k + 1;  // level-k BSN size is 2^top_stage
    kx.begin_level(top_stage);
    kx.heat_level = k;
    load_lines(kx, lines);
    PlanLevel* pl = nullptr;
    if (plan != nullptr) {
      pl = &plan->levels.emplace_back();
      pl->stages = top_stage;
      pl->entry_t0.assign(kx.tag_plane(0).begin(), kx.tag_plane(0).end());
      pl->entry_t1.assign(kx.tag_plane(1).begin(), kx.tag_plane(1).end());
      pl->entry_t2.assign(kx.tag_plane(2).begin(), kx.tag_plane(2).end());
    }
    compile_level_feedback(net.fabric_, n, m, k, ws, lines, next_copy_id, pl,
                           result, options, probe, checking, route_ord);
  }

  // Final pass: the 2x2-switch level, realized by stage 1 of the fabric.
  if (options.capture_levels) result.level_inputs.push_back(lines);
  fault::apply_dead_lines(options.faults, route_ord, m,
                          fault::ImplKind::Feedback, RouteEngine::Packed,
                          lines, options.fault_activity);
  if (plan != nullptr) capture_final_planes(lines, *plan);
  const std::size_t splits_before_final = result.stats.broadcast_ops;
  {
    obs::PhaseTimer final_timer(probe.datapath);
    obs::PerfScope final_perf(probe.profiler, probe.perf_datapath);
    obs::TraceSpan final_span(probe.tracer, "level.final");
    ExplainSink final_sink;
    if (options.explain) {
      result.explanation->passes.push_back(make_pass(m, PassKind::Final, n, 1));
      final_sink.pass = &result.explanation->passes.back();
    }
    fault::guard(checking, n, route_ord, m, PassKind::Final, true, [&] {
      deliver_final_level(lines, result.delivered, &result.stats,
                          options.explain ? &final_sink : nullptr, heatmap);
    });
  }
  result.broadcasts_per_level.push_back(result.stats.broadcast_ops -
                                        splits_before_final);
  ++result.stats.fabric_passes;

  const auto expected = expected_delivery(assignment);
  if (checking) {
    fault::self_check_delivery(result.delivered, expected, m, route_ord);
  }
  BRSMN_ENSURES_MSG(result.delivered == expected,
                    "feedback BRSMN routed assignment incorrectly");
  } catch (const fault::FaultDetected& e) {
    if (options.explain && result.explanation.has_value()) {
      fault::rethrow_localized(net, e, *result.explanation);
    }
    throw;
  }
  if (plan != nullptr) capture_result(result, *plan);
  total_perf.stop();
  total_timer.stop();
  if constexpr (obs::kEnabled) {
    if (probe.enabled()) probe.record_stats(result.stats);
  }
  return result;
}

namespace {

/// The shared patch walk: walk the levels of a fresh compile of
/// `assignment`, adopting every level whose entry tag planes match the
/// base plan's stored checkpoint and recompiling the rest through the
/// exact cold code path. `reuse` and `compile` bind the implementation's
/// fabric (the install targets are private to the networks, so the
/// befriended planner::patch_route overloads pass them in as callables).
template <typename ReuseFn, typename CompileFn>
planner::PatchOutcome patch_route_core(
    std::size_t n, int m, fault::ImplKind impl,
    pkern::CompileWorkspace& ws, const MulticastAssignment& assignment,
    const RoutePlan& base, const RouteOptions& options, RoutePlan& out,
    const planner::PatchConfig& config, ReuseFn&& reuse,
    CompileFn&& compile) {
  BRSMN_EXPECTS_MSG(options.faults == nullptr,
                    "cannot patch a route plan under fault injection");
  BRSMN_EXPECTS_MSG(!options.capture_levels,
                    "cannot capture level inputs while patching");
  BRSMN_EXPECTS_MSG(assignment.size() == n,
                    "assignment width must match the network");
  BRSMN_EXPECTS_MSG(
      base.n == n && base.impl == impl &&
          base.levels.size() == static_cast<std::size_t>(m - 1),
      "patch base must be a plan compiled on this network");

  planner::PatchOutcome outcome;
  // Reused levels adopt the base's explanation passes verbatim; a base
  // compiled without one cannot serve an explained patch.
  if (options.explain && !base.explanation.has_value()) return outcome;

  obs::RouteProbe probe;
  obs::Histogram* patch_hist = nullptr;
  obs::FabricHeatmap* heatmap = nullptr;
  if constexpr (obs::kEnabled) {
    if (options.metrics != nullptr) {
      probe = obs::RouteProbe::attach(*options.metrics, options.metrics_prefix);
      patch_hist = &options.metrics->histogram(
          std::string(options.metrics_prefix) + ".phase.patch_ns");
    }
    probe.tracer = options.tracer;
    probe.attach_profiler(options.profiler);
    heatmap = options.heatmap;
  }
  obs::PhaseTimer total_timer(probe.total);
  obs::PerfScope total_perf(probe.profiler, probe.perf_total);
  obs::PhaseTimer patch_timer(patch_hist);
  obs::TraceSpan patch_span(probe.tracer, "plan.patch");

  RouteResult& result = outcome.result;
  result.delivered.assign(n, std::nullopt);
  if (options.explain) {
    result.explanation.emplace();
    result.explanation->n = n;
  }

  out.n = n;
  out.m = m;
  out.impl = impl;
  out.wcode = static_cast<std::size_t>(m) + 1;
  out.levels.clear();
  out.levels.reserve(static_cast<std::size_t>(m - 1));

  const bool checking = options.self_check;
  std::uint64_t next_copy_id = 1;
  std::vector<LineValue> lines = initial_lines(assignment, next_copy_id);

  // Recompile budget: one more dirty level than this abandons the patch.
  // Dirtiness is not monotone in depth — a level's entries re-converge
  // onto the base checkpoints once quasisort has normalized the order
  // (and a delta that preserves a level's half-splits never dirties it
  // at all) — so the budget counts *actual* dirty levels as the walk
  // discovers them. A walk that exhausts the budget has spent at most
  // max_dirty_fraction of a cold compile before handing over.
  const double budget =
      config.max_dirty_fraction * static_cast<double>(m - 1);

  pkern::LevelKernel& kx = ws.kx;
  kx.ops = &simd::ops(options.simd_backend);
  // Reused levels restore stored checkpoints without re-running the
  // datapath, so only recompiled levels (and the always-fresh final
  // level) accumulate heatmap activity on the patch path.
  kx.heat = heatmap;

  for (int k = 1; k <= m - 1; ++k) {
    const int stages = m - k + 1;  // both impls: level-k BSN size 2^(m-k+1)
    kx.begin_level(stages);
    kx.heat_level = k;
    load_lines(kx, lines);
    const PlanLevel& old = base.levels[static_cast<std::size_t>(k - 1)];
    const bool clean = old.stages == stages && entry_planes_match(kx, old);
    if (!clean) {
      if (outcome.first_dirty_level == 0) outcome.first_dirty_level = k;
      if (static_cast<double>(outcome.levels_recompiled + 1) > budget) {
        return outcome;  // abandoned: `out` unspecified, caller compiles cold
      }
    }
    PlanLevel* pl = &out.levels.emplace_back();
    if (clean) {
      *pl = old;
      reuse(k, old, ws, lines, next_copy_id, result, probe, checking);
      ++outcome.levels_reused;
    } else {
      pl->stages = stages;
      pl->entry_t0.assign(kx.tag_plane(0).begin(), kx.tag_plane(0).end());
      pl->entry_t1.assign(kx.tag_plane(1).begin(), kx.tag_plane(1).end());
      pl->entry_t2.assign(kx.tag_plane(2).begin(), kx.tag_plane(2).end());
      compile(k, ws, lines, next_copy_id, pl, result, probe, checking);
      ++outcome.levels_recompiled;
    }
  }

  // The final 2x2 delivery level is always computed fresh — it is cheap,
  // and rebuilding it revalidates the patched route's delivery end to end.
  capture_final_planes(lines, out);
  const std::size_t splits_before_final = result.stats.broadcast_ops;
  {
    obs::PhaseTimer final_timer(probe.datapath);
    obs::PerfScope final_perf(probe.profiler, probe.perf_datapath);
    obs::TraceSpan final_span(probe.tracer, "level.final");
    ExplainSink final_sink;
    if (options.explain) {
      result.explanation->passes.push_back(make_pass(m, PassKind::Final, n, 1));
      final_sink.pass = &result.explanation->passes.back();
    }
    fault::guard(checking, n, 0, m, PassKind::Final, true, [&] {
      deliver_final_level(lines, result.delivered, &result.stats,
                          options.explain ? &final_sink : nullptr, heatmap);
    });
  }
  result.broadcasts_per_level.push_back(result.stats.broadcast_ops -
                                        splits_before_final);
  if (impl == fault::ImplKind::Feedback) ++result.stats.fabric_passes;

  const auto expected = expected_delivery(assignment);
  if (checking) {
    fault::self_check_delivery(result.delivered, expected, m, 0);
  }
  BRSMN_ENSURES_MSG(result.delivered == expected,
                    "patched BRSMN route delivered incorrectly");
  capture_result(result, out);
  outcome.patched = true;
  total_perf.stop();
  total_timer.stop();
  if constexpr (obs::kEnabled) {
    if (probe.enabled()) probe.record_stats(result.stats);
  }
  return outcome;
}

}  // namespace

namespace planner {

PatchOutcome patch_route(Brsmn& net, const MulticastAssignment& assignment,
                         const RoutePlan& base, const RouteOptions& options,
                         RoutePlan& out, const PatchConfig& config) {
  const RouteExplanation* base_expl =
      base.explanation.has_value() ? &*base.explanation : nullptr;
  if (net.compile_ws_ == nullptr) {
    net.compile_ws_ =
        std::make_unique<pkern::CompileWorkspace>(net.n_, net.m_);
  }
  return patch_route_core(
      net.n_, net.m_, fault::ImplKind::Unrolled, *net.compile_ws_,
      assignment, base, options, out, config,
      [&](int k, const PlanLevel& old, pkern::CompileWorkspace& ws,
          std::vector<LineValue>& lines, std::uint64_t& next_copy_id,
          RouteResult& result, obs::RouteProbe& probe, bool checking) {
        reuse_level_unrolled(net.levels_[static_cast<std::size_t>(k - 1)],
                             old, base_expl, net.n_, k, ws, lines,
                             next_copy_id, result, options, probe, checking);
      },
      [&](int k, pkern::CompileWorkspace& ws, std::vector<LineValue>& lines,
          std::uint64_t& next_copy_id, PlanLevel* pl, RouteResult& result,
          obs::RouteProbe& probe, bool checking) {
        compile_level_unrolled(net.levels_[static_cast<std::size_t>(k - 1)],
                               net.n_, k, ws, lines, next_copy_id, pl, result,
                               options, probe, checking, /*route_ord=*/0);
      });
}

PatchOutcome patch_route(FeedbackBrsmn& net,
                         const MulticastAssignment& assignment,
                         const RoutePlan& base, const RouteOptions& options,
                         RoutePlan& out, const PatchConfig& config) {
  const RouteExplanation* base_expl =
      base.explanation.has_value() ? &*base.explanation : nullptr;
  if (net.compile_ws_ == nullptr) {
    net.compile_ws_ = std::make_unique<pkern::CompileWorkspace>(
        net.size(), net.levels());
  }
  return patch_route_core(
      net.size(), net.levels(), fault::ImplKind::Feedback, *net.compile_ws_,
      assignment, base, options, out, config,
      [&](int k, const PlanLevel& old, pkern::CompileWorkspace& ws,
          std::vector<LineValue>& lines, std::uint64_t& next_copy_id,
          RouteResult& result, obs::RouteProbe& probe, bool checking) {
        reuse_level_feedback(net.fabric_, old, base_expl, net.size(), k, ws,
                             lines, next_copy_id, result, options, probe,
                             checking);
      },
      [&](int k, pkern::CompileWorkspace& ws, std::vector<LineValue>& lines,
          std::uint64_t& next_copy_id, PlanLevel* pl, RouteResult& result,
          obs::RouteProbe& probe, bool checking) {
        compile_level_feedback(net.fabric_, net.size(), net.levels(), k, ws,
                               lines, next_copy_id, pl, result, options,
                               probe, checking, /*route_ord=*/0);
      });
}

}  // namespace planner

}  // namespace brsmn
