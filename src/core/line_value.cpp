// line_value.hpp is header-only; this TU compile-checks the aggregate
// definitions under the library's warning set.
#include "core/line_value.hpp"

namespace brsmn {

static_assert(std::is_default_constructible_v<LineValue>);
static_assert(std::is_move_constructible_v<Packet>);

}  // namespace brsmn
