#include "common/bits.hpp"

namespace brsmn {

std::string to_binary(std::uint64_t addr, int m) {
  BRSMN_EXPECTS(m > 0 && m <= 64);
  std::string s(static_cast<std::size_t>(m), '0');
  for (int i = 0; i < m; ++i) {
    if (msb_at(addr, i, m)) s[static_cast<std::size_t>(i)] = '1';
  }
  return s;
}

}  // namespace brsmn
