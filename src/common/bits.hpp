// Bit/address utilities shared by all network modules.
//
// Network sizes are always powers of two (n = 2^m); addresses are m-bit
// binary numbers a_0 a_1 ... a_{m-1} with a_0 the most significant bit
// (paper, Section 2).
#pragma once

#include <bit>
#include <cstdint>
#include <string>

#include "common/contracts.hpp"

namespace brsmn {

/// True iff `n` is a power of two (and nonzero).
constexpr bool is_pow2(std::uint64_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// log2 of a power of two. Precondition: is_pow2(n).
constexpr int log2_exact(std::uint64_t n) {
  BRSMN_EXPECTS(is_pow2(n));
  return std::bit_width(n) - 1;
}

/// The i-th most significant bit (i in [0, m)) of an m-bit address.
/// Matches the paper's a_0 a_1 ... a_{m-1} numbering: bit 0 is the MSB.
constexpr int msb_at(std::uint64_t addr, int i, int m) {
  BRSMN_EXPECTS(m > 0 && i >= 0 && i < m);
  return static_cast<int>((addr >> (m - 1 - i)) & 1u);
}

/// Render `addr` as an m-bit binary string, MSB first.
std::string to_binary(std::uint64_t addr, int m);

}  // namespace brsmn
