// Contract-checking macros (Core Guidelines I.6/I.8 style Expects/Ensures).
//
// Violations throw brsmn::ContractViolation rather than aborting so that
// property tests can assert that malformed inputs are rejected.
#pragma once

#include <stdexcept>
#include <string>

namespace brsmn {

/// Thrown when a precondition, postcondition, or internal invariant fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void contract_fail(const char* kind, const char* expr,
                                const char* file, int line,
                                const std::string& msg);
}  // namespace detail

}  // namespace brsmn

/// Precondition check: callers must satisfy `cond`.
#define BRSMN_EXPECTS(cond)                                                  \
  do {                                                                       \
    if (!(cond))                                                             \
      ::brsmn::detail::contract_fail("precondition", #cond, __FILE__,        \
                                     __LINE__, "");                          \
  } while (0)

/// Precondition check with an explanatory message.
#define BRSMN_EXPECTS_MSG(cond, msg)                                         \
  do {                                                                       \
    if (!(cond))                                                             \
      ::brsmn::detail::contract_fail("precondition", #cond, __FILE__,        \
                                     __LINE__, (msg));                       \
  } while (0)

/// Postcondition / invariant check: the implementation must satisfy `cond`.
#define BRSMN_ENSURES(cond)                                                  \
  do {                                                                       \
    if (!(cond))                                                             \
      ::brsmn::detail::contract_fail("postcondition", #cond, __FILE__,       \
                                     __LINE__, "");                          \
  } while (0)

#define BRSMN_ENSURES_MSG(cond, msg)                                         \
  do {                                                                       \
    if (!(cond))                                                             \
      ::brsmn::detail::contract_fail("postcondition", #cond, __FILE__,       \
                                     __LINE__, (msg));                       \
  } while (0)
