#include "common/rng.hpp"

#include <algorithm>
#include <numeric>

#include "common/contracts.hpp"

namespace brsmn {

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  BRSMN_EXPECTS(lo <= hi);
  return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
}

bool Rng::chance(double p) {
  return std::bernoulli_distribution(p)(engine_);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::shuffle(perm.begin(), perm.end(), engine_);
  return perm;
}

std::vector<std::size_t> Rng::subset(std::size_t n, std::size_t size) {
  BRSMN_EXPECTS(size <= n);
  std::vector<std::size_t> all = permutation(n);
  all.resize(size);
  std::sort(all.begin(), all.end());
  return all;
}

}  // namespace brsmn
