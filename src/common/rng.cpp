#include "common/rng.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <numeric>

#include "common/contracts.hpp"

namespace brsmn {

namespace {

std::atomic<std::uint64_t> g_last_test_seed{0};

/// Parse BRSMN_TEST_SEED once; nullopt-like sentinel via the `set` flag.
struct SeedOverride {
  bool set = false;
  std::uint64_t value = 0;

  SeedOverride() {
    const char* env = std::getenv("BRSMN_TEST_SEED");
    if (env == nullptr || *env == '\0') return;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 0);
    if (end != nullptr && *end == '\0') {
      set = true;
      value = parsed;
    }
  }
};

const SeedOverride& seed_override() {
  static const SeedOverride override;
  return override;
}

}  // namespace

std::uint64_t test_seed(std::uint64_t fallback) noexcept {
  const SeedOverride& env = seed_override();
  const std::uint64_t seed = env.set ? env.value : fallback;
  g_last_test_seed.store(seed, std::memory_order_relaxed);
  return seed;
}

std::uint64_t last_test_seed() noexcept {
  return g_last_test_seed.load(std::memory_order_relaxed);
}

bool test_seed_overridden() noexcept { return seed_override().set; }

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  BRSMN_EXPECTS(lo <= hi);
  return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
}

bool Rng::chance(double p) {
  return std::bernoulli_distribution(p)(engine_);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::shuffle(perm.begin(), perm.end(), engine_);
  return perm;
}

std::vector<std::size_t> Rng::subset(std::size_t n, std::size_t size) {
  BRSMN_EXPECTS(size <= n);
  std::vector<std::size_t> all = permutation(n);
  all.resize(size);
  std::sort(all.begin(), all.end());
  return all;
}

}  // namespace brsmn
