// Shared registry for lazily-built power-of-two lookup tables.
//
// Several subsystems keep per-width permutation/index tables that are
// pure functions of the width: the topology shuffle maps
// (topology/shuffle.cpp) and the bit-reversal order of the tag-sequence
// encoder (core/tag_sequence.cpp). Each used to carry its own
// std::once_flag array + table array statics, so the scalar and packed
// engines could end up building identical tables twice behind different
// statics. This header centralizes the pattern: one registry per table
// *kind* (identified by the builder function), one build per (kind,
// width) per process, spans stable for the process lifetime.
#pragma once

#include <array>
#include <cstddef>
#include <mutex>
#include <span>
#include <vector>

#include "common/bits.hpp"
#include "common/contracts.hpp"

namespace brsmn::common {

/// One lazily-built table of T per power-of-two length. `Builder` is a
/// stateless callable `void(std::size_t len, std::vector<T>& out)`; the
/// builder type identifies the registry, so two call sites naming the
/// same builder share one set of tables. Thread-safe (std::call_once);
/// returned spans are valid for the process lifetime.
template <typename T, typename Builder>
std::span<const T> pow2_table(std::size_t len) {
  BRSMN_EXPECTS(is_pow2(len));
  static std::array<std::once_flag, 64> built;
  static std::array<std::vector<T>, 64> tables;
  const auto k = static_cast<std::size_t>(log2_exact(len));
  std::call_once(built[k], [len, k] { Builder{}(len, tables[k]); });
  return tables[k];
}

}  // namespace brsmn::common
