// Deterministic random generation helpers for tests, benchmarks, and
// workload generators. A fixed seed gives a fully reproducible run.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace brsmn {

/// Thin wrapper around a seeded mt19937_64 with the handful of draws the
/// workload generators need. Copyable; copies continue the same stream
/// independently.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Bernoulli draw with probability p of true.
  bool chance(double p);

  /// A uniformly random permutation of {0, ..., n-1}.
  std::vector<std::size_t> permutation(std::size_t n);

  /// A uniformly random subset of {0, ..., n-1} of the given size.
  std::vector<std::size_t> subset(std::size_t n, std::size_t size);

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// The effective seed for a randomized test: `fallback` unless the
/// BRSMN_TEST_SEED environment variable is set, in which case every call
/// returns that value (one global override reruns an entire suite on one
/// stream). The returned value is recorded for last_test_seed(), so a
/// failure report can name the seed that produced it.
std::uint64_t test_seed(std::uint64_t fallback) noexcept;

/// The most recent value test_seed() returned in this process (0 before
/// the first call) and whether BRSMN_TEST_SEED is overriding.
std::uint64_t last_test_seed() noexcept;
bool test_seed_overridden() noexcept;

}  // namespace brsmn
