// Deterministic random generation helpers for tests, benchmarks, and
// workload generators. A fixed seed gives a fully reproducible run.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace brsmn {

/// Thin wrapper around a seeded mt19937_64 with the handful of draws the
/// workload generators need. Copyable; copies continue the same stream
/// independently.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Bernoulli draw with probability p of true.
  bool chance(double p);

  /// A uniformly random permutation of {0, ..., n-1}.
  std::vector<std::size_t> permutation(std::size_t n);

  /// A uniformly random subset of {0, ..., n-1} of the given size.
  std::vector<std::size_t> subset(std::size_t n, std::size_t size);

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace brsmn
