// Wire-format multicast headers (paper Section 7.1 + Table 1).
//
// A multidestination message's header is its routing-tag sequence of
// n-1 tags, each encoded in the 3-bit b0 b1 b2 format of Table 1, for a
// total of 3(n-1) header bits. This module serializes destination sets
// to header bits and back, which is what a hardware implementation would
// actually clock into the fabric.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/tag.hpp"

namespace brsmn::api {

/// Header bits for the destination set `dests` in an n x n network:
/// 3(n-1) bits, each tag MSB (b0) first.
std::vector<bool> encode_header(std::span<const std::size_t> dests,
                                std::size_t n);

/// Parse header bits back into the tag sequence they encode.
/// bits.size() must be a multiple of 3 and encode a valid sequence
/// length (n-1 tags for a power-of-two n).
std::vector<Tag> header_to_sequence(const std::vector<bool>& bits);

/// Full decode: header bits -> destination set.
std::vector<std::size_t> decode_header(const std::vector<bool>& bits);

/// Header size in bits for an n x n network.
std::size_t header_bits(std::size_t n);

}  // namespace brsmn::api
