// Self-checking resilient routing front-end.
//
// The BRSMN engines are self-routing with no central controller; with
// the online self-check (fault/self_check.hpp) they *detect* a corrupted
// route but still fail it. ResilientRouter turns detection into
// recovery: a failed route is retried with bounded exponential backoff,
// then walked down a fallback ladder — Packed -> Scalar engine, unrolled
// -> feedback implementation — and only reported Failed when every path
// is exhausted. The caller gets a typed per-request outcome instead of
// an exception: Delivered (primary path), DeliveredDegraded (a fallback
// path carried it), or Failed (with the last FaultReport attached).
//
// Why the ladder is a genuine recovery path: a transient fault clears on
// retry; an engine-scoped fault (model of a defect in one datapath's
// silicon) clears on the engine fallback; an implementation-scoped fault
// (defect in one fabric) clears on the unrolled -> feedback fallback,
// which routes over physically different switches (one reused n x n
// fabric instead of log n levels of BSNs).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "api/group_manager.hpp"
#include "core/brsmn.hpp"
#include "core/feedback.hpp"
#include "fault/fault_report.hpp"

namespace brsmn::obs {
class FabricHeatmap;
class MetricRegistry;
class Tracer;
}  // namespace brsmn::obs

namespace brsmn::fault {
class FaultInjector;
}  // namespace brsmn::fault

namespace brsmn::api {

class ParallelRouter;
class PlanCache;

/// Per-request terminal state.
enum class RouteOutcome : std::uint8_t {
  /// Routed on the primary path (possibly after retries on that path).
  Delivered,
  /// Routed correctly, but only after falling back to a non-primary
  /// engine or implementation — service continues in degraded mode.
  DeliveredDegraded,
  /// Every configured path exhausted its attempts; `report` names the
  /// last detection.
  Failed,
};

std::string_view outcome_name(RouteOutcome outcome);

/// Bounded-retry knobs. Attempts are per *path* (a path = engine x
/// implementation pair in the fallback ladder), so the worst case is
/// max_attempts_per_path x ladder length routes.
struct RetryPolicy {
  std::size_t max_attempts_per_path = 2;
  /// Fall back Packed -> Scalar after the primary engine's attempts.
  bool fallback_engine = true;
  /// Fall back unrolled -> feedback after the engine fallback.
  bool fallback_implementation = true;
  /// Backoff before retry #k (k >= 1, counted across the whole ladder):
  /// min(initial_backoff * backoff_multiplier^(k-1), max_backoff).
  /// Zero initial backoff (the default) retries immediately.
  std::chrono::microseconds initial_backoff{0};
  double backoff_multiplier = 2.0;
  std::chrono::microseconds max_backoff{10000};
  /// Multiplicative backoff jitter in [0, 1]: each computed backoff is
  /// scaled by a factor drawn deterministically from (jitter_seed, salt)
  /// in [1 - jitter, 1], so workers sharing a policy but seeded apart
  /// spread their retries instead of hammering a recovering fabric in
  /// lockstep. 0 (the default) keeps the legacy deterministic schedule.
  double jitter = 0.0;
  /// Seed of the jitter stream. Give each worker its own value (the
  /// cluster derives per-worker seeds from ClusterConfig::seed); tests
  /// deriving it from common/rng test_seed() stay reproducible under
  /// BRSMN_TEST_SEED.
  std::uint64_t jitter_seed = 0;
};

/// Throws common/contracts ContractViolation when the policy cannot
/// express a sane schedule: zero attempts per path, a non-finite or
/// non-positive backoff multiplier, jitter outside [0, 1], or a negative
/// backoff cap. ResilientRouter validates its policy at construction.
void validate(const RetryPolicy& policy);

/// The backoff to sleep before the `failures`-th retry (failures >= 1).
/// Deterministic in (policy, failures, salt): the jitter factor is a pure
/// hash of (policy.jitter_seed, salt), no hidden generator state. Callers
/// wanting successive retries to draw fresh jitter pass a new salt per
/// retry (ResilientRouter salts with a per-router retry ordinal).
std::chrono::microseconds backoff_for_attempt(const RetryPolicy& policy,
                                              std::size_t failures,
                                              std::uint64_t salt = 0);

struct ResilientOptions {
  /// Primary datapath engine; the ladder may add Scalar as fallback.
  RouteEngine engine = RouteEngine::Scalar;
  RetryPolicy retry{};
  /// Online self-check for every attempt (default on; a fault injector
  /// implies it regardless).
  bool self_check = true;
  /// Fault-injection seam, shared by every path (its activation windows
  /// see the injector's global route ordinals, so a transient scheduled
  /// for ordinal 0 misses the ordinal-1 retry — that is the recovery).
  fault::FaultInjector* faults = nullptr;
  obs::MetricRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
  /// Compiled-plan cache shared by every attempt and by route_batch
  /// workers (see api/plan_cache.hpp). A replayed plan that trips the
  /// self-check is invalidated and the attempt surfaces FaultDetected,
  /// so the retry ladder recompiles or falls back as usual. Null: every
  /// route is cold.
  PlanCache* plan_cache = nullptr;
  /// Fabric utilization heatmap (obs/fabric_heatmap.hpp), threaded into
  /// every attempt's RouteOptions. Single-owner: one routing thread per
  /// map — concurrent routers (cluster shard workers) give each worker
  /// its own map and merge(). Null: datapaths unobserved.
  obs::FabricHeatmap* heatmap = nullptr;
};

/// One rung of the fallback ladder.
struct RoutePath {
  RouteEngine engine = RouteEngine::Scalar;
  bool feedback = false;  ///< false = unrolled Brsmn, true = FeedbackBrsmn

  friend bool operator==(const RoutePath&, const RoutePath&) = default;
};

/// What happened to one routing request.
struct RequestOutcome {
  RouteOutcome outcome = RouteOutcome::Failed;
  /// The successful route's result (delivered vector, stats, ...);
  /// nullopt when outcome == Failed.
  std::optional<RouteResult> result;
  /// Total route attempts spent, across every path tried.
  std::size_t attempts = 0;
  /// The path that delivered (or the last one tried on failure).
  RoutePath path{};
  /// Detections seen along the way: the first one for recovered
  /// requests, the last one for failures. Empty for clean deliveries.
  std::optional<fault::FaultReport> report;
};

class ResilientRouter {
 public:
  ResilientRouter(std::size_t n, const ResilientOptions& options = {});
  ~ResilientRouter();

  std::size_t size() const noexcept { return n_; }
  const ResilientOptions& options() const noexcept { return options_; }

  /// Route one assignment down the ladder. Never throws FaultDetected —
  /// detections become retries, fallbacks, and finally a Failed outcome.
  RequestOutcome route(const MulticastAssignment& assignment);

  /// Route a dynamic group (api/group_manager.hpp) down the same
  /// ladder. Every attempt goes through GroupManager::route on this
  /// router's engines, so with a plan cache configured a clean repeat
  /// replays and a post-churn route patches incrementally; an attempt
  /// that trips the self-check has already invalidated precisely the
  /// cache entry it replayed or patched from, so the retry recompiles.
  /// Each path routes the group's assignment as of that attempt —
  /// concurrent joins/leaves land on whichever attempt reads them.
  RequestOutcome route_group(GroupId group, GroupManager& groups);

  /// Route a batch: a ParallelRouter fans the fast path across worker
  /// threads; on any aggregate failure each assignment is re-run through
  /// the resilient ladder serially, so per-request outcomes stay exact.
  std::vector<RequestOutcome> route_batch(
      const std::vector<MulticastAssignment>& batch);

  /// Lifetime counters, mirrored into metrics as fault.detected /
  /// fault.recovered / fault.degraded / fault.gaveup when a registry is
  /// attached.
  std::uint64_t faults_detected() const noexcept { return detected_; }
  std::uint64_t faults_recovered() const noexcept { return recovered_; }
  std::uint64_t degraded_deliveries() const noexcept { return degraded_; }
  std::uint64_t faults_gaveup() const noexcept { return gaveup_; }

  /// The fallback ladder this router walks, primary path first.
  std::vector<RoutePath> ladder() const;

  /// Shutdown-aware backoff: wake any ladder currently sleeping in a
  /// retry backoff and skip every subsequent backoff, so tearing down a
  /// cluster of routers is never blocked behind max_backoff. Routing
  /// semantics are otherwise unchanged — in-flight ladders still finish
  /// their attempts (fast, since they no longer sleep). Sticky until
  /// clear_stop(). Safe to call from any thread.
  void request_stop();
  void clear_stop();
  bool stop_requested() const noexcept {
    return stop_requested_.load(std::memory_order_acquire);
  }

 private:
  /// One attempt on one rung: route somehow (cold, replay, patch) and
  /// return the result, throwing fault::FaultDetected on detection.
  using AttemptFn = std::function<RouteResult(const RoutePath&, bool)>;

  /// The retry/fallback walk shared by route() and route_group():
  /// `attempt` is invoked per (path, explain) try and its detections
  /// drive the ladder.
  RequestOutcome run_ladder(const AttemptFn& attempt);
  RequestOutcome route_ladder(const MulticastAssignment& assignment);
  RouteResult route_once(const MulticastAssignment& assignment,
                         const RoutePath& path, bool explain);
  /// The RouteOptions every attempt on `path` routes with.
  RouteOptions path_options(const RoutePath& path, bool explain) const;
  void bump(const char* counter_name, std::uint64_t& local);

  std::size_t n_;
  ResilientOptions options_;
  Brsmn unrolled_;
  std::unique_ptr<FeedbackBrsmn> feedback_;  ///< lazy: first fallback use
  std::unique_ptr<ParallelRouter> batch_;    ///< lazy: first route_batch
  std::uint64_t detected_ = 0;
  std::uint64_t recovered_ = 0;
  std::uint64_t degraded_ = 0;
  std::uint64_t gaveup_ = 0;
  /// Jitter salt: one fresh draw per backoff, across all ladders.
  std::atomic<std::uint64_t> backoff_ordinal_{0};
  /// request_stop wakes sleepers through this cv; the flag is atomic so
  /// the no-backoff fast path never takes the mutex.
  std::atomic<bool> stop_requested_{false};
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
};

}  // namespace brsmn::api
