// Assignment-keyed cache of compiled route plans (core/route_plan.hpp).
//
// Routing the same MulticastAssignment repeatedly — the common shape of
// multicast workloads, where a connection pattern persists across many
// cells — re-runs the full configuration pipeline every time. The cache
// keys compiled plans by the exact (assignment, implementation) pair, so
// a repeat route degenerates to route_replay: install the stored
// settings and drive the datapath.
//
// Keys are canonical: a 64-bit FNV-1a hash of the destination lists
// selects the shard and bucket, and an exact flattened-key comparison
// guards against collisions — two distinct assignments never share an
// entry, no matter how their hashes land (exercised by the
// force_hash_collisions test hook).
//
// Thread safety: the cache is sharded, each shard holding its own mutex,
// bounded LRU list, and hash index — ParallelRouter workers hit it
// concurrently. Hit/miss/eviction/invalidation counts are kept in
// atomics and optionally mirrored into plan_cache.* registry counters.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/brsmn.hpp"
#include "core/feedback.hpp"
#include "core/route_plan.hpp"

namespace brsmn::obs {
class Counter;
class MetricRegistry;
}  // namespace brsmn::obs

namespace brsmn::api {

struct PlanCacheConfig {
  /// Total plan capacity across all shards; the per-shard bound is
  /// max(1, capacity / shards), evicting least-recently-used past it.
  std::size_t capacity = 256;
  std::size_t shards = 8;
  /// Test hook: collapse every key to one hash value, forcing all
  /// entries through the exact-key comparison path of a single bucket.
  bool force_hash_collisions = false;
};

class PlanCache {
 public:
  using PlanPtr = std::shared_ptr<const RoutePlan>;

  explicit PlanCache(PlanCacheConfig config = {});

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Find the plan compiled for exactly (assignment, impl), refreshing
  /// its LRU position. When `require_explanation`, an entry compiled
  /// without provenance counts as a miss (the caller needs a plan whose
  /// replay can produce RouteResult::explanation). Returns nullptr on a
  /// miss.
  PlanPtr lookup(const MulticastAssignment& assignment, fault::ImplKind impl,
                 bool require_explanation = false);

  /// Insert (or replace) the plan for (assignment, impl), evicting the
  /// shard's least-recently-used entries past its bound.
  void insert(const MulticastAssignment& assignment, fault::ImplKind impl,
              PlanPtr plan);

  /// Drop the entry for (assignment, impl), if present — called when a
  /// replay raises fault::FaultDetected, so the next route recompiles.
  void invalidate(const MulticastAssignment& assignment, fault::ImplKind impl);

  void clear();

  std::size_t size() const;
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  std::uint64_t invalidations() const {
    return invalidations_.load(std::memory_order_relaxed);
  }

  /// Mirror the counts into <prefix>.{hits,misses,evictions,
  /// invalidations} counters of `registry` from now on.
  void attach_metrics(obs::MetricRegistry& registry,
                      std::string_view prefix = "plan_cache");

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::vector<std::uint64_t> key;  ///< flattened exact key
    PlanPtr plan;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< most recently used at the front
    std::unordered_multimap<std::uint64_t, std::list<Entry>::iterator> index;
  };

  Shard& shard_for(std::uint64_t hash) {
    return shards_[static_cast<std::size_t>(hash >> 32) % shards_.size()];
  }
  std::uint64_t key_hash(const MulticastAssignment& assignment,
                         fault::ImplKind impl) const;
  /// Erase the (hash, exact key) entry of `shard` if present; returns
  /// whether one was erased. Caller holds the shard mutex.
  bool erase_locked(Shard& shard, std::uint64_t hash,
                    const MulticastAssignment& assignment,
                    fault::ImplKind impl);

  std::vector<Shard> shards_;  ///< sized once; mutexes never move
  std::size_t per_shard_cap_;
  bool force_hash_collisions_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> invalidations_{0};
  obs::Counter* hits_counter_ = nullptr;
  obs::Counter* misses_counter_ = nullptr;
  obs::Counter* evictions_counter_ = nullptr;
  obs::Counter* invalidations_counter_ = nullptr;
};

/// The cache-aware route path Brsmn::route / FeedbackBrsmn::route
/// delegate to when RouteOptions::plan_cache is set: a hit replays (a
/// replay that raises FaultDetected invalidates the entry first — and
/// recompiles cold when no injector is armed), a clean miss compiles and
/// inserts, and a miss under an armed injector cold-routes without
/// inserting (a plan compiled through a fault would freeze corrupted
/// checkpoints).
RouteResult route_via_cache(Brsmn& net, const MulticastAssignment& assignment,
                            const RouteOptions& options);
RouteResult route_via_cache(FeedbackBrsmn& net,
                            const MulticastAssignment& assignment,
                            const RouteOptions& options);

}  // namespace brsmn::api
