// Batch routing across CPU threads.
//
// Routing one assignment is inherently sequential (each level feeds the
// next), but independent assignments — successive switching epochs, or
// Monte-Carlo sweeps in the benchmark harness — are embarrassingly
// parallel. ParallelRouter keeps one Brsmn engine per worker thread,
// alive across route_batch calls (building a Brsmn allocates every level
// BSN, so rebuilding per batch would dominate small batches), and shards
// each batch over them with an atomic work queue. The slot discipline,
// fan-out loop and failure aggregation live in api/engine_pool.hpp — the
// layer the sharded cluster (api/cluster.hpp) composes as well; this
// class adds batch deduplication and the parallel.* instrumentation.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "api/engine_pool.hpp"
#include "api/group_manager.hpp"
#include "core/brsmn.hpp"

namespace brsmn::obs {
class MetricRegistry;
class Tracer;
}  // namespace brsmn::obs

namespace brsmn::fault {
class FaultInjector;
}  // namespace brsmn::fault

namespace brsmn::api {

class PlanCache;

class ParallelRouter {
 public:
  /// A pool of `threads` engines for an n x n network; threads == 0
  /// selects std::thread::hardware_concurrency().
  explicit ParallelRouter(std::size_t n, unsigned threads = 0);

  std::size_t network_size() const noexcept { return n_; }
  unsigned threads() const noexcept { return threads_; }

  /// Engines constructed so far (lazily, one per worker slot on its
  /// first use); exposed so tests can assert they persist across calls.
  unsigned engines_built() const noexcept;

  /// Attach a registry: workers record per-worker batch latency
  /// (parallel.worker_batch_ns), per-assignment latency
  /// (parallel.route_ns), per-batch work distribution
  /// (parallel.routes_per_worker, parallel.last_imbalance) and forward
  /// it to each engine's route() for phase timings. Pass nullptr to
  /// detach. Applies to subsequent route_batch calls.
  void set_metrics(obs::MetricRegistry* metrics);

  /// Select the datapath engine the workers route with (default Scalar).
  /// Packed composes the worker-level parallelism of this class with the
  /// word-level parallelism of core/packed_kernel.hpp. Applies to
  /// subsequent route_batch calls.
  void set_engine(RouteEngine engine);
  RouteEngine engine() const noexcept { return engine_; }

  /// Attach an event tracer: route_batch spans the dispatch on the caller
  /// thread and each worker's slice on its own thread — every worker is
  /// its own lane in the Chrome trace, with the engines' per-level spans
  /// nested inside. Pass nullptr to detach. Applies to subsequent
  /// route_batch calls.
  void set_tracer(obs::Tracer* tracer);

  /// Attach a fault injector shared by every worker engine (its route
  /// ordinal counter is atomic, so the workers draw from one schedule).
  /// Pass nullptr to detach. Applies to subsequent route_batch calls.
  void set_faults(fault::FaultInjector* faults);

  /// Toggle the engines' online self-check for worker routes (default
  /// on, matching RouteOptions). Applies to subsequent route_batch calls.
  void set_self_check(bool on);
  bool self_check() const noexcept { return self_check_; }

  /// Attach a compiled-plan cache (api/plan_cache.hpp) shared by every
  /// worker engine — the cache is sharded and thread-safe, so concurrent
  /// workers hit plans their peers compiled. Pass nullptr to detach.
  /// Applies to subsequent route_batch calls.
  void set_plan_cache(PlanCache* cache);
  PlanCache* plan_cache() const noexcept { return plan_cache_; }

  /// Route every assignment in `batch`; results come back in order.
  /// Identical assignments within the batch are routed once and their
  /// results copied to every duplicate (whether or not a plan cache is
  /// attached); with a fault injector attached every element is routed
  /// individually, since each route draws its own fault schedule slot.
  /// All assignments must have size network_size(). Worker-side failures
  /// do not abort the batch: every remaining assignment is still routed,
  /// then ALL failures are rethrown as one exception whose message lists
  /// each offending batch index ("assignment <i>: <what>"). The
  /// aggregate is a ContractViolation when every underlying failure was
  /// one, so callers can still catch ContractViolation.
  std::vector<RouteResult> route_batch(
      const std::vector<MulticastAssignment>& batch);

  /// Route every group id's *current* assignment through `groups`
  /// (api/group_manager.hpp) on the worker engines; results come back
  /// in `ids` order. Unlike route_batch there is no deduplication —
  /// each route snapshots the live registry, and with the attached plan
  /// cache repeats replay and post-churn groups patch, which is the
  /// cheap path dedup would buy anyway. Failures aggregate exactly like
  /// route_batch, with messages naming the group ("group <id>: ...").
  std::vector<RouteResult> route_groups(GroupManager& groups,
                                        const std::vector<GroupId>& ids);

 private:
  /// The RouteOptions every worker routes with under the current setters.
  RouteOptions worker_options() const;

  std::size_t n_;
  unsigned threads_;
  /// Worker-slot engines, one Brsmn per slot (engine_pool.hpp): slot t is
  /// only touched by worker t during a batch.
  EnginePool<Brsmn> pool_;
  obs::MetricRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  RouteEngine engine_ = RouteEngine::Scalar;
  fault::FaultInjector* faults_ = nullptr;
  bool self_check_ = true;
  PlanCache* plan_cache_ = nullptr;
};

}  // namespace brsmn::api
