// Batch routing across CPU threads.
//
// Routing one assignment is inherently sequential (each level feeds the
// next), but independent assignments — successive switching epochs, or
// Monte-Carlo sweeps in the benchmark harness — are embarrassingly
// parallel. ParallelRouter keeps one Brsmn engine per worker thread and
// shards a batch over them.
#pragma once

#include <cstddef>
#include <vector>

#include "core/brsmn.hpp"

namespace brsmn::api {

class ParallelRouter {
 public:
  /// A pool of `threads` engines for an n x n network; threads == 0
  /// selects std::thread::hardware_concurrency().
  explicit ParallelRouter(std::size_t n, unsigned threads = 0);

  std::size_t network_size() const noexcept { return n_; }
  unsigned threads() const noexcept { return threads_; }

  /// Route every assignment in `batch`; results come back in order.
  /// All assignments must have size network_size(). Contract violations
  /// raised by a worker propagate to the caller.
  std::vector<RouteResult> route_batch(
      const std::vector<MulticastAssignment>& batch);

 private:
  std::size_t n_;
  unsigned threads_;
};

}  // namespace brsmn::api
