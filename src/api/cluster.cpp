#include "api/cluster.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "api/plan_cache.hpp"
#include "common/contracts.hpp"
#include "core/brsmn.hpp"
#include "core/placement.hpp"
#include "core/route_plan.hpp"
#include "fault/fault_injector.hpp"
#include "obs/fabric_heatmap.hpp"
#include "obs/metrics.hpp"

namespace brsmn::api {

namespace {

/// Rolling-window outcome codes (one byte per retained outcome).
constexpr std::uint8_t kOk = 0;
constexpr std::uint8_t kDegraded = 1;
constexpr std::uint8_t kFailed = 2;

std::uint8_t outcome_code(const ClusterOutcome& outcome) {
  if (outcome.misdelivered) return kFailed;  // worse than failed, same bucket
  switch (outcome.request.outcome) {
    case RouteOutcome::Delivered: return kOk;
    case RouteOutcome::DeliveredDegraded: return kDegraded;
    case RouteOutcome::Failed: return kFailed;
  }
  return kFailed;
}

}  // namespace

std::string_view shard_state_name(ShardState state) {
  switch (state) {
    case ShardState::Healthy: return "healthy";
    case ShardState::Degraded: return "degraded";
    case ShardState::Quarantined: return "quarantined";
  }
  return "?";
}

/// One queued unit of work: either an owned assignment or a borrowed
/// dynamic group, plus the placement decision and the delivery promise.
struct Cluster::Request {
  std::promise<ClusterOutcome> promise;
  std::optional<MulticastAssignment> assignment;
  GroupManager* groups = nullptr;
  GroupId group = 0;
  std::size_t primary = 0;
  bool rerouted = false;
  bool canary = false;
  std::chrono::steady_clock::time_point submitted_at{};
};

/// One fabric replica: ingress queue, plan cache, per-worker resilient
/// routers and heatmaps, chaos state, and the control plane's books.
struct Cluster::Shard {
  std::unique_ptr<BoundedQueue<Request>> queue;
  std::unique_ptr<PlanCache> cache;
  std::vector<std::unique_ptr<obs::FabricHeatmap>> heatmaps;
  std::vector<std::unique_ptr<ResilientRouter>> routers;
  std::vector<std::thread> workers;
  fault::FaultInjector* faults = nullptr;

  std::atomic<bool> killed{false};
  std::atomic<ShardState> state{ShardState::Healthy};

  /// Rolling outcome window (ring of outcome codes) and the probation
  /// streak, guarded together: workers append, the control plane reads
  /// and resets.
  mutable std::mutex health_mutex;
  std::vector<std::uint8_t> window;
  std::size_t window_next = 0;
  std::size_t window_count = 0;
  std::size_t probation_streak = 0;

  // Lifetime per-shard counts (ShardStatus).
  std::atomic<std::uint64_t> served{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> canaries{0};
  std::atomic<std::uint64_t> quarantines{0};
  std::atomic<std::uint64_t> readmissions{0};

  // Cached instruments (null without a registry / with obs disabled).
  obs::Gauge* state_gauge = nullptr;
  obs::Gauge* queue_gauge = nullptr;
  obs::Gauge* failure_rate_gauge = nullptr;
  obs::Gauge* degraded_rate_gauge = nullptr;
  obs::Histogram* route_hist = nullptr;

  /// Failure/degraded rates over the current window, read under
  /// health_mutex by the caller.
  void window_rates_locked(double& failure_rate, double& degraded_rate,
                           std::size_t& observations) const {
    observations = window_count;
    std::size_t failures = 0;
    std::size_t degraded = 0;
    for (std::size_t i = 0; i < window_count; ++i) {
      if (window[i] == kFailed) ++failures;
      if (window[i] == kDegraded) ++degraded;
    }
    const double denom =
        observations == 0 ? 1.0 : static_cast<double>(observations);
    failure_rate = static_cast<double>(failures) / denom;
    degraded_rate = static_cast<double>(degraded) / denom;
  }
};

void Cluster::bump(obs::Counter* counter) {
  if constexpr (obs::kEnabled) {
    if (counter != nullptr) counter->add(1);
  }
}

Cluster::Cluster(std::size_t n, const ClusterConfig& config)
    : n_(n), config_(config) {
  BRSMN_EXPECTS_MSG(config_.shards >= 1, "cluster needs at least one shard");
  BRSMN_EXPECTS_MSG(config_.workers_per_shard >= 1,
                    "cluster needs at least one worker per shard");
  BRSMN_EXPECTS_MSG(config_.queue_capacity >= 1,
                    "cluster ingress queues need capacity >= 1");
  BRSMN_EXPECTS_MSG(config_.shard_faults.size() <= config_.shards,
                    "more shard fault injectors than shards");
  validate(config_.retry);

  if constexpr (obs::kEnabled) {
    if (config_.metrics != nullptr) {
      obs::MetricRegistry& m = *config_.metrics;
      const std::string& p = config_.metrics_prefix;
      submitted_counter_ = &m.counter(p + ".submitted");
      delivered_counter_ = &m.counter(p + ".delivered");
      delivered_degraded_counter_ = &m.counter(p + ".delivered_degraded");
      failed_counter_ = &m.counter(p + ".failed");
      rejected_counter_ = &m.counter(p + ".rejected");
      rerouted_counter_ = &m.counter(p + ".rerouted");
      canaries_counter_ = &m.counter(p + ".canaries");
      quarantines_counter_ = &m.counter(p + ".quarantines");
      readmissions_counter_ = &m.counter(p + ".readmissions");
      misdelivered_counter_ = &m.counter(p + ".misdelivered");
      request_hist_ = &m.histogram(p + ".request_ns");
      m.gauge(p + ".shards").set(static_cast<double>(config_.shards));
    }
  }

  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->queue = std::make_unique<BoundedQueue<Request>>(
        config_.queue_capacity);
    shard->faults =
        s < config_.shard_faults.size() ? config_.shard_faults[s] : nullptr;
    shard->window.resize(std::max<std::size_t>(1, config_.health.window));
    if (config_.plan_cache) {
      PlanCacheConfig pc;
      pc.capacity = config_.plan_cache_capacity;
      shard->cache = std::make_unique<PlanCache>(pc);
    }
    if constexpr (obs::kEnabled) {
      if (config_.metrics != nullptr) {
        obs::MetricRegistry& m = *config_.metrics;
        const std::string base =
            config_.metrics_prefix + ".shard." + std::to_string(s);
        shard->state_gauge = &m.gauge(base + ".state");
        shard->queue_gauge = &m.gauge(base + ".queue_depth");
        shard->failure_rate_gauge = &m.gauge(base + ".failure_rate");
        shard->degraded_rate_gauge = &m.gauge(base + ".degraded_rate");
        shard->route_hist = &m.histogram(base + ".route_ns");
        if (shard->cache) {
          // All shards share one aggregated plan-cache family: the
          // counters add deltas, so totals compose.
          shard->cache->attach_metrics(m, config_.metrics_prefix +
                                              ".plan_cache");
        }
      }
    }
    for (std::size_t w = 0; w < config_.workers_per_shard; ++w) {
      ResilientOptions ro;
      ro.engine = config_.engine;
      ro.retry = config_.retry;
      // Every worker gets its own jitter stream, derived from the
      // cluster seed (and the user's jitter_seed, if set) so retries
      // never synchronize across workers yet replay exactly under
      // BRSMN_TEST_SEED-derived cluster seeds.
      ro.retry.jitter_seed =
          mix64(mix64(config_.seed) ^ mix64(config_.retry.jitter_seed) ^
                (static_cast<std::uint64_t>(s) << 32) ^
                static_cast<std::uint64_t>(w));
      ro.self_check = config_.self_check;
      ro.faults = shard->faults;
      ro.metrics = config_.metrics;
      ro.tracer = config_.tracer;
      ro.plan_cache = shard->cache.get();
      if (config_.heatmap) {
        shard->heatmaps.push_back(std::make_unique<obs::FabricHeatmap>(n_));
        ro.heatmap = shard->heatmaps.back().get();
      }
      shard->routers.push_back(std::make_unique<ResilientRouter>(n_, ro));
    }
    shards_.push_back(std::move(shard));
  }

  for (std::size_t s = 0; s < shards_.size(); ++s) {
    for (std::size_t w = 0; w < config_.workers_per_shard; ++w) {
      shards_[s]->workers.emplace_back(
          [this, s, w] { worker_loop(s, w); });
    }
  }
  if (config_.health.probe_interval.count() > 0) {
    control_thread_ = std::thread([this] { control_loop(); });
  }
}

Cluster::~Cluster() { stop(); }

std::size_t Cluster::choose_shard(std::uint64_t key, std::size_t& primary,
                                  bool& canary) {
  std::vector<std::size_t> order;
  placement_order_into(key, shards_.size(), order);
  primary = order[0];
  canary = false;
  if (shards_[primary]->state.load(std::memory_order_acquire) !=
      ShardState::Quarantined) {
    return primary;
  }
  // Primary quarantined: pace a canary in, otherwise walk the key's own
  // preference order to its first serving shard (deterministic secondary).
  if (config_.health.canary_interval > 0 &&
      canary_tick_.fetch_add(1, std::memory_order_relaxed) %
              config_.health.canary_interval ==
          0) {
    canary = true;
    return primary;
  }
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (shards_[order[i]]->state.load(std::memory_order_acquire) !=
        ShardState::Quarantined) {
      return order[i];
    }
  }
  // Every shard quarantined: nothing is better than the primary; treat
  // the forced admission as a canary so it can still earn readmission.
  canary = true;
  return primary;
}

std::future<ClusterOutcome> Cluster::enqueue(Request request,
                                             std::uint64_t key) {
  std::future<ClusterOutcome> future = request.promise.get_future();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  bump(submitted_counter_);

  std::size_t primary = 0;
  bool canary = false;
  const std::size_t target = choose_shard(key, primary, canary);
  request.primary = primary;
  request.canary = canary;
  request.rerouted = target != primary;
  request.submitted_at = std::chrono::steady_clock::now();

  bool admitted = false;
  if (!stopping_.load(std::memory_order_acquire)) {
    admitted = shards_[target]->queue->push(request);
  }
  if (!admitted) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    bump(rejected_counter_);
    ClusterOutcome out;
    out.shard = target;
    out.primary_shard = primary;
    out.rejected = true;
    out.request.outcome = RouteOutcome::Failed;
    request.promise.set_value(std::move(out));
  }
  return future;
}

std::future<ClusterOutcome> Cluster::submit(MulticastAssignment assignment) {
  BRSMN_EXPECTS_MSG(assignment.size() == n_,
                    "assignment size does not match the cluster's fabrics");
  const std::uint64_t key = assignment_fingerprint(assignment);
  Request request;
  request.assignment = std::move(assignment);
  return enqueue(std::move(request), key);
}

std::future<ClusterOutcome> Cluster::submit_group(GroupManager& groups,
                                                  GroupId group) {
  BRSMN_EXPECTS_MSG(groups.network_size() == n_,
                    "group manager width does not match the cluster");
  Request request;
  request.groups = &groups;
  request.group = group;
  return enqueue(std::move(request), mix64(group));
}

ClusterOutcome Cluster::route(MulticastAssignment assignment) {
  return submit(std::move(assignment)).get();
}

std::vector<ClusterOutcome> Cluster::route_batch(
    std::vector<MulticastAssignment> batch) {
  std::vector<std::future<ClusterOutcome>> futures;
  futures.reserve(batch.size());
  for (MulticastAssignment& assignment : batch) {
    futures.push_back(submit(std::move(assignment)));
  }
  std::vector<ClusterOutcome> outcomes;
  outcomes.reserve(futures.size());
  for (std::future<ClusterOutcome>& f : futures) {
    outcomes.push_back(f.get());
  }
  return outcomes;
}

void Cluster::worker_loop(std::size_t shard_index, std::size_t worker_index) {
  Shard& shard = *shards_[shard_index];
  Request request;
  while (shard.queue->pop(request)) {
    serve(shard, shard_index, worker_index, std::move(request));
  }
}

void Cluster::serve(Shard& shard, std::size_t shard_index,
                    std::size_t worker_index, Request request) {
  ClusterOutcome out;
  out.shard = shard_index;
  out.primary_shard = request.primary;
  out.rerouted = request.rerouted;
  out.canary = request.canary;

  const auto route_start = std::chrono::steady_clock::now();
  try {
    if (shard.killed.load(std::memory_order_acquire)) {
      // A dead replica answers nothing; the cluster synthesizes the
      // failure instantly so the control plane sees a failure *rate*,
      // not a hang.
      out.request.outcome = RouteOutcome::Failed;
      out.request.attempts = 0;
    } else if (request.groups != nullptr) {
      out.request =
          shard.routers[worker_index]->route_group(request.group,
                                                   *request.groups);
    } else {
      out.request = shard.routers[worker_index]->route(*request.assignment);
    }
    if (config_.verify_delivery && out.request.result.has_value() &&
        request.assignment.has_value()) {
      out.misdelivered =
          out.request.result->delivered !=
          expected_delivery(*request.assignment);
    }
  } catch (...) {
    // Non-fault errors (contract violations) propagate to the waiter;
    // the request still counts as completed-and-failed so conservation
    // holds.
    out.request.outcome = RouteOutcome::Failed;
    out.request.result.reset();
    record_outcome(shard, out);
    request.promise.set_exception(std::current_exception());
    return;
  }
  const auto finished = std::chrono::steady_clock::now();
  if constexpr (obs::kEnabled) {
    if (shard.route_hist != nullptr) {
      shard.route_hist->record(
          std::chrono::duration<double, std::nano>(finished - route_start)
              .count());
    }
    if (request_hist_ != nullptr) {
      request_hist_->record(std::chrono::duration<double, std::nano>(
                                finished - request.submitted_at)
                                .count());
    }
  }
  record_outcome(shard, out);
  request.promise.set_value(std::move(out));
}

void Cluster::record_outcome(Shard& shard, const ClusterOutcome& outcome) {
  completed_.fetch_add(1, std::memory_order_relaxed);
  shard.served.fetch_add(1, std::memory_order_relaxed);
  switch (outcome.request.outcome) {
    case RouteOutcome::Delivered:
      delivered_.fetch_add(1, std::memory_order_relaxed);
      bump(delivered_counter_);
      break;
    case RouteOutcome::DeliveredDegraded:
      delivered_degraded_.fetch_add(1, std::memory_order_relaxed);
      bump(delivered_degraded_counter_);
      break;
    case RouteOutcome::Failed:
      failed_.fetch_add(1, std::memory_order_relaxed);
      shard.failed.fetch_add(1, std::memory_order_relaxed);
      bump(failed_counter_);
      break;
  }
  if (outcome.rerouted) {
    rerouted_.fetch_add(1, std::memory_order_relaxed);
    bump(rerouted_counter_);
  }
  if (outcome.canary) {
    canaries_.fetch_add(1, std::memory_order_relaxed);
    shard.canaries.fetch_add(1, std::memory_order_relaxed);
    bump(canaries_counter_);
  }
  if (outcome.misdelivered) {
    misdelivered_.fetch_add(1, std::memory_order_relaxed);
    bump(misdelivered_counter_);
  }

  const std::uint8_t code = outcome_code(outcome);
  const std::lock_guard<std::mutex> lock(shard.health_mutex);
  shard.window[shard.window_next] = code;
  shard.window_next = (shard.window_next + 1) % shard.window.size();
  shard.window_count = std::min(shard.window_count + 1, shard.window.size());
  if (outcome.canary) {
    if (code == kFailed) {
      shard.probation_streak = 0;
    } else {
      ++shard.probation_streak;
    }
  }
}

void Cluster::poll_health() {
  const std::lock_guard<std::mutex> poll_lock(poll_mutex_);
  const ClusterHealthPolicy& hp = config_.health;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    double failure_rate = 0.0;
    double degraded_rate = 0.0;
    std::size_t observations = 0;
    std::size_t streak = 0;
    {
      const std::lock_guard<std::mutex> lock(shard.health_mutex);
      shard.window_rates_locked(failure_rate, degraded_rate, observations);
      streak = shard.probation_streak;
    }
    const std::size_t depth = shard.queue->depth();
    double p99_ns = 0.0;
    if constexpr (obs::kEnabled) {
      if (hp.degrade_p99_ns > 0.0 && shard.route_hist != nullptr) {
        p99_ns = shard.route_hist->snapshot().p99;
      }
    }

    const ShardState current = shard.state.load(std::memory_order_acquire);
    ShardState next = current;
    if (current == ShardState::Quarantined) {
      if (streak >= hp.probation_successes) {
        next = ShardState::Healthy;
        shard.readmissions.fetch_add(1, std::memory_order_relaxed);
        readmissions_.fetch_add(1, std::memory_order_relaxed);
        bump(readmissions_counter_);
        // A readmitted shard starts with a clean slate: the quarantine-era
        // failures must not instantly re-quarantine it.
        const std::lock_guard<std::mutex> lock(shard.health_mutex);
        shard.window_count = 0;
        shard.window_next = 0;
        shard.probation_streak = 0;
      }
    } else if (observations >= hp.min_observations &&
               failure_rate >= hp.quarantine_failure_rate) {
      next = ShardState::Quarantined;
      shard.quarantines.fetch_add(1, std::memory_order_relaxed);
      quarantines_.fetch_add(1, std::memory_order_relaxed);
      bump(quarantines_counter_);
      const std::lock_guard<std::mutex> lock(shard.health_mutex);
      shard.probation_streak = 0;
    } else if ((observations >= hp.min_observations &&
                degraded_rate >= hp.degrade_degraded_rate) ||
               (hp.degrade_queue_depth > 0 &&
                depth >= hp.degrade_queue_depth) ||
               (hp.degrade_p99_ns > 0.0 && p99_ns >= hp.degrade_p99_ns)) {
      next = ShardState::Degraded;
    } else {
      next = ShardState::Healthy;
    }
    if (next != current) {
      shard.state.store(next, std::memory_order_release);
    }
    if constexpr (obs::kEnabled) {
      if (shard.state_gauge != nullptr) {
        shard.state_gauge->set(static_cast<double>(
            static_cast<std::uint8_t>(next)));
        shard.queue_gauge->set(static_cast<double>(depth));
        shard.failure_rate_gauge->set(failure_rate);
        shard.degraded_rate_gauge->set(degraded_rate);
      }
    }
  }
}

void Cluster::control_loop() {
  std::unique_lock<std::mutex> lock(control_mutex_);
  while (!control_stop_) {
    control_cv_.wait_for(lock, config_.health.probe_interval,
                         [this] { return control_stop_; });
    if (control_stop_) break;
    lock.unlock();
    poll_health();
    lock.lock();
  }
}

void Cluster::kill_shard(std::size_t shard) {
  BRSMN_EXPECTS(shard < shards_.size());
  shards_[shard]->killed.store(true, std::memory_order_release);
}

void Cluster::revive_shard(std::size_t shard) {
  BRSMN_EXPECTS(shard < shards_.size());
  shards_[shard]->killed.store(false, std::memory_order_release);
}

ShardState Cluster::shard_state(std::size_t shard) const {
  BRSMN_EXPECTS(shard < shards_.size());
  return shards_[shard]->state.load(std::memory_order_acquire);
}

ShardStatus Cluster::shard_status(std::size_t shard) const {
  BRSMN_EXPECTS(shard < shards_.size());
  const Shard& s = *shards_[shard];
  ShardStatus status;
  status.state = s.state.load(std::memory_order_acquire);
  status.killed = s.killed.load(std::memory_order_acquire);
  status.queue_depth = s.queue->depth();
  {
    const std::lock_guard<std::mutex> lock(s.health_mutex);
    s.window_rates_locked(status.failure_rate, status.degraded_rate,
                          status.observations);
  }
  status.served = s.served.load(std::memory_order_relaxed);
  status.failed = s.failed.load(std::memory_order_relaxed);
  status.canaries = s.canaries.load(std::memory_order_relaxed);
  status.quarantines = s.quarantines.load(std::memory_order_relaxed);
  status.readmissions = s.readmissions.load(std::memory_order_relaxed);
  return status;
}

ClusterTotals Cluster::totals() const {
  ClusterTotals t;
  t.submitted = submitted_.load(std::memory_order_relaxed);
  t.completed = completed_.load(std::memory_order_relaxed);
  t.delivered = delivered_.load(std::memory_order_relaxed);
  t.delivered_degraded = delivered_degraded_.load(std::memory_order_relaxed);
  t.failed = failed_.load(std::memory_order_relaxed);
  t.rejected = rejected_.load(std::memory_order_relaxed);
  t.rerouted = rerouted_.load(std::memory_order_relaxed);
  t.canaries = canaries_.load(std::memory_order_relaxed);
  t.quarantines = quarantines_.load(std::memory_order_relaxed);
  t.readmissions = readmissions_.load(std::memory_order_relaxed);
  t.misdelivered = misdelivered_.load(std::memory_order_relaxed);
  return t;
}

const obs::FabricHeatmap& Cluster::heatmap() {
  merged_heatmap_ = std::make_unique<obs::FabricHeatmap>(n_);
  for (const auto& shard : shards_) {
    for (const auto& map : shard->heatmaps) {
      merged_heatmap_->merge(*map);
    }
  }
  return *merged_heatmap_;
}

void Cluster::stop() {
  stopping_.store(true, std::memory_order_release);
  const std::lock_guard<std::mutex> once(stop_once_mutex_);
  if (stopped_) return;
  stopped_ = true;

  if (control_thread_.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(control_mutex_);
      control_stop_ = true;
    }
    control_cv_.notify_all();
    control_thread_.join();
  }
  // Wake routers out of any retry backoff first, then close the queues:
  // workers drain every admitted request (fast, since ladders no longer
  // sleep) and exit on the closed-and-empty signal.
  for (const auto& shard : shards_) {
    for (const auto& router : shard->routers) router->request_stop();
  }
  for (const auto& shard : shards_) shard->queue->close();
  for (const auto& shard : shards_) {
    for (std::thread& worker : shard->workers) worker.join();
    shard->workers.clear();
  }
}

}  // namespace brsmn::api
