#include "api/parallel_router.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "common/contracts.hpp"

namespace brsmn::api {

ParallelRouter::ParallelRouter(std::size_t n, unsigned threads)
    : n_(n),
      threads_(threads != 0 ? threads
                            : std::max(1u, std::thread::hardware_concurrency())) {
  BRSMN_EXPECTS(is_pow2(n) && n >= 2);
}

std::vector<RouteResult> ParallelRouter::route_batch(
    const std::vector<MulticastAssignment>& batch) {
  for (const auto& a : batch) BRSMN_EXPECTS(a.size() == n_);
  std::vector<RouteResult> results(batch.size());
  if (batch.empty()) return results;

  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(threads_, batch.size()));
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto work = [&] {
    Brsmn engine(n_);  // one fabric per worker: no shared mutable state
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= batch.size()) return;
      try {
        results[i] = engine.route(batch[i]);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(work);
  for (auto& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace brsmn::api
