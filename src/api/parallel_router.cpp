#include "api/parallel_router.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "api/plan_cache.hpp"
#include "common/contracts.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_timer.hpp"
#include "obs/tracer.hpp"

namespace brsmn::api {

ParallelRouter::ParallelRouter(std::size_t n, unsigned threads)
    : n_(n),
      threads_(threads != 0 ? threads
                            : std::max(1u, std::thread::hardware_concurrency())),
      pool_(threads_, [n](unsigned) { return std::make_unique<Brsmn>(n); }) {
  BRSMN_EXPECTS(is_pow2(n) && n >= 2);
}

unsigned ParallelRouter::engines_built() const noexcept {
  return pool_.built();
}

void ParallelRouter::set_metrics(obs::MetricRegistry* metrics) {
  metrics_ = metrics;
}

void ParallelRouter::set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

void ParallelRouter::set_engine(RouteEngine engine) { engine_ = engine; }

void ParallelRouter::set_faults(fault::FaultInjector* faults) {
  faults_ = faults;
}

void ParallelRouter::set_self_check(bool on) { self_check_ = on; }

void ParallelRouter::set_plan_cache(PlanCache* cache) { plan_cache_ = cache; }

RouteOptions ParallelRouter::worker_options() const {
  RouteOptions options;
  options.metrics = metrics_;
  options.tracer = tracer_;
  options.engine = engine_;
  options.self_check = self_check_;
  options.faults = faults_;
  options.plan_cache = plan_cache_;
  return options;
}

namespace {

bool same_assignment(const MulticastAssignment& a,
                     const MulticastAssignment& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.destinations(i) != b.destinations(i)) return false;
  }
  return true;
}

/// The per-worker scope ParallelRouter wraps around a pool run: one
/// batch-latency sample and one trace lane per worker.
struct WorkerScope {
  obs::Histogram* worker_hist;
  obs::Tracer* tracer;

  template <typename Body>
  void operator()(unsigned t, const Body& body) const {
    const obs::PhaseTimer batch_timer(worker_hist);
    char worker_label[24];
    std::snprintf(worker_label, sizeof worker_label, "parallel.worker.%u", t);
    obs::TraceSpan worker_span(tracer, worker_label);
    body();
  }
};

}  // namespace

std::vector<RouteResult> ParallelRouter::route_batch(
    const std::vector<MulticastAssignment>& batch) {
  std::vector<RouteResult> results(batch.size());
  if (batch.empty()) return results;

  // Pre-deduplicate: rep[i] is the first batch index carrying an
  // identical assignment; workers route only representatives and the
  // results fan back out below. Skipped under fault injection, where
  // every batch element must draw its own slot of the fault schedule.
  std::vector<std::size_t> rep(batch.size());
  std::size_t duplicates = 0;
  if (faults_ == nullptr) {
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      rep[i] = i;
      auto& bucket = buckets[assignment_fingerprint(batch[i])];
      for (const std::size_t j : bucket) {
        if (same_assignment(batch[j], batch[i])) {
          rep[i] = j;
          ++duplicates;
          break;
        }
      }
      if (rep[i] == i) bucket.push_back(i);
    }
  } else {
    for (std::size_t i = 0; i < batch.size(); ++i) rep[i] = i;
  }

  obs::Histogram* worker_hist = nullptr;
  obs::Histogram* route_hist = nullptr;
  obs::Histogram* per_worker_hist = nullptr;
  if constexpr (obs::kEnabled) {
    if (metrics_ != nullptr) {
      worker_hist = &metrics_->histogram("parallel.worker_batch_ns");
      route_hist = &metrics_->histogram("parallel.route_ns");
      per_worker_hist = &metrics_->histogram("parallel.routes_per_worker");
    }
  }

  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(threads_, batch.size()));
  const RouteOptions options = worker_options();
  std::vector<std::size_t> routed_per_worker(workers, 0);

  obs::TraceSpan dispatch_span(tracer_, "parallel.route_batch");
  std::vector<WorkFailure> failures = pool_.for_each(
      batch.size(),
      [&](Brsmn& engine, unsigned t, std::size_t i) {
        if (rep[i] != i) return;  // a duplicate; filled in after the join
        BRSMN_EXPECTS_MSG(batch[i].size() == n_,
                          "assignment size does not match the network");
        const obs::PhaseTimer route_timer(route_hist);
        results[i] = engine.route(batch[i], options);
        ++routed_per_worker[t];
      },
      WorkerScope{worker_hist, tracer_});

  if (duplicates != 0) {
    // Fan the representatives' outcomes back out: duplicates share their
    // representative's result — or its failure.
    std::unordered_map<std::size_t, std::exception_ptr> failed_reps;
    for (const WorkFailure& f : failures) failed_reps.emplace(f.index, f.error);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (rep[i] == i) continue;
      const auto it = failed_reps.find(rep[i]);
      if (it != failed_reps.end()) {
        failures.push_back({i, it->second});
      } else {
        results[i] = results[rep[i]];
      }
    }
    std::sort(failures.begin(), failures.end(),
              [](const WorkFailure& a, const WorkFailure& b) {
                return a.index < b.index;
              });
  }

  if (!failures.empty()) {
    throw_aggregated("route_batch", "assignment", failures,
                     [](std::size_t i) { return std::to_string(i); });
  }

  if constexpr (obs::kEnabled) {
    if (metrics_ != nullptr) {
      std::size_t lo = std::numeric_limits<std::size_t>::max();
      std::size_t hi = 0;
      for (const std::size_t routed : routed_per_worker) {
        per_worker_hist->record(static_cast<double>(routed));
        lo = std::min(lo, routed);
        hi = std::max(hi, routed);
      }
      metrics_->gauge("parallel.last_imbalance")
          .set(static_cast<double>(hi - lo));
      metrics_->gauge("parallel.last_workers")
          .set(static_cast<double>(workers));
      metrics_->counter("parallel.batches").add(1);
      metrics_->counter("parallel.routes").add(batch.size());
      metrics_->counter("parallel.batch_deduped").add(duplicates);
    }
  }
  return results;
}

std::vector<RouteResult> ParallelRouter::route_groups(
    GroupManager& groups, const std::vector<GroupId>& ids) {
  BRSMN_EXPECTS_MSG(groups.network_size() == n_,
                    "group manager width does not match the router");
  std::vector<RouteResult> results(ids.size());
  if (ids.empty()) return results;

  obs::Histogram* worker_hist = nullptr;
  obs::Histogram* route_hist = nullptr;
  if constexpr (obs::kEnabled) {
    if (metrics_ != nullptr) {
      worker_hist = &metrics_->histogram("parallel.worker_batch_ns");
      route_hist = &metrics_->histogram("parallel.route_ns");
    }
  }

  const RouteOptions options = worker_options();
  obs::TraceSpan dispatch_span(tracer_, "parallel.route_groups");
  const std::vector<WorkFailure> failures = pool_.for_each(
      ids.size(),
      [&](Brsmn& engine, unsigned, std::size_t i) {
        const obs::PhaseTimer route_timer(route_hist);
        results[i] = std::move(groups.route(ids[i], engine, options).result);
      },
      WorkerScope{worker_hist, tracer_});

  if (!failures.empty()) {
    throw_aggregated("route_groups", "group", failures, [&](std::size_t i) {
      return std::to_string(ids[i]);
    });
  }

  if constexpr (obs::kEnabled) {
    if (metrics_ != nullptr) {
      metrics_->counter("parallel.batches").add(1);
      metrics_->counter("parallel.group_routes").add(ids.size());
    }
  }
  return results;
}

}  // namespace brsmn::api
