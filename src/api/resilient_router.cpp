#include "api/resilient_router.hpp"

#include <cmath>
#include <thread>
#include <utility>

#include "api/parallel_router.hpp"
#include "common/contracts.hpp"
#include "core/placement.hpp"
#include "fault/fault_injector.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace brsmn::api {

std::string_view outcome_name(RouteOutcome outcome) {
  switch (outcome) {
    case RouteOutcome::Delivered: return "delivered";
    case RouteOutcome::DeliveredDegraded: return "delivered-degraded";
    case RouteOutcome::Failed: return "failed";
  }
  return "?";
}

void validate(const RetryPolicy& policy) {
  BRSMN_EXPECTS_MSG(policy.max_attempts_per_path >= 1,
                    "retry policy: max_attempts_per_path must be >= 1");
  BRSMN_EXPECTS_MSG(std::isfinite(policy.backoff_multiplier) &&
                        policy.backoff_multiplier > 0.0,
                    "retry policy: backoff_multiplier must be finite and > 0");
  BRSMN_EXPECTS_MSG(
      std::isfinite(policy.jitter) && policy.jitter >= 0.0 &&
          policy.jitter <= 1.0,
      "retry policy: jitter must be a fraction in [0, 1]");
  BRSMN_EXPECTS_MSG(policy.max_backoff.count() >= 0,
                    "retry policy: max_backoff must be non-negative");
}

std::chrono::microseconds backoff_for_attempt(const RetryPolicy& policy,
                                              std::size_t failures,
                                              std::uint64_t salt) {
  BRSMN_EXPECTS(failures >= 1);
  if (policy.initial_backoff.count() <= 0) return std::chrono::microseconds{0};
  double us = static_cast<double>(policy.initial_backoff.count());
  const double cap = static_cast<double>(policy.max_backoff.count());
  for (std::size_t k = 1; k < failures && us < cap; ++k) {
    us *= policy.backoff_multiplier;
  }
  us = std::min(us, cap);
  if (policy.jitter > 0.0 && us > 0.0) {
    // A pure hash of (seed, salt) mapped to [0, 1): reproducible, no
    // generator state, and independent draws across salts. Jitter only
    // shrinks the backoff, so max_backoff stays a hard ceiling.
    const std::uint64_t h = mix64(policy.jitter_seed ^ mix64(salt));
    const double unit =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // 2^-53
    us *= 1.0 - policy.jitter * unit;
  }
  return std::chrono::microseconds{static_cast<std::int64_t>(us)};
}

ResilientRouter::ResilientRouter(std::size_t n,
                                 const ResilientOptions& options)
    : n_(n), options_(options), unrolled_(n) {
  validate(options_.retry);
  if (options_.faults != nullptr) {
    BRSMN_EXPECTS_MSG(options_.faults->size() == n,
                      "fault plan width must match the network");
  }
}

void ResilientRouter::request_stop() {
  {
    const std::lock_guard<std::mutex> lock(stop_mutex_);
    stop_requested_.store(true, std::memory_order_release);
  }
  stop_cv_.notify_all();
}

void ResilientRouter::clear_stop() {
  const std::lock_guard<std::mutex> lock(stop_mutex_);
  stop_requested_.store(false, std::memory_order_release);
}

ResilientRouter::~ResilientRouter() = default;

std::vector<RoutePath> ResilientRouter::ladder() const {
  const RetryPolicy& retry = options_.retry;
  std::vector<RoutePath> paths;
  paths.push_back({options_.engine, false});
  if (retry.fallback_engine && options_.engine == RouteEngine::Packed) {
    paths.push_back({RouteEngine::Scalar, false});
  }
  if (retry.fallback_implementation) {
    paths.push_back({options_.engine, true});
    if (retry.fallback_engine && options_.engine == RouteEngine::Packed) {
      paths.push_back({RouteEngine::Scalar, true});
    }
  }
  return paths;
}

void ResilientRouter::bump(const char* counter_name, std::uint64_t& local) {
  ++local;
  if constexpr (obs::kEnabled) {
    if (options_.metrics != nullptr) {
      options_.metrics->counter(counter_name).add(1);
    }
    if (options_.tracer != nullptr) options_.tracer->instant(counter_name);
  }
}

RouteOptions ResilientRouter::path_options(const RoutePath& path,
                                           bool explain) const {
  RouteOptions ro;
  ro.engine = path.engine;
  ro.self_check = options_.self_check;
  ro.faults = options_.faults;
  ro.explain = explain;
  ro.metrics = options_.metrics;
  ro.tracer = options_.tracer;
  ro.plan_cache = options_.plan_cache;
  ro.heatmap = options_.heatmap;
  return ro;
}

RouteResult ResilientRouter::route_once(const MulticastAssignment& assignment,
                                        const RoutePath& path, bool explain) {
  const RouteOptions ro = path_options(path, explain);
  if (!path.feedback) return unrolled_.route(assignment, ro);
  if (!feedback_) feedback_ = std::make_unique<FeedbackBrsmn>(n_);
  return feedback_->route(assignment, ro);
}

RequestOutcome ResilientRouter::route_ladder(
    const MulticastAssignment& assignment) {
  return run_ladder([&](const RoutePath& path, bool explain) {
    return route_once(assignment, path, explain);
  });
}

RequestOutcome ResilientRouter::run_ladder(const AttemptFn& attempt) {
  RequestOutcome out;
  const std::vector<RoutePath> paths = ladder();
  const std::size_t per_path =
      std::max<std::size_t>(1, options_.retry.max_attempts_per_path);
  std::size_t failures = 0;
  bool saw_fault = false;
  std::optional<fault::FaultReport> last_report;

  for (std::size_t p = 0; p < paths.size(); ++p) {
    out.path = paths[p];
    for (std::size_t a = 0; a < per_path; ++a) {
      if (failures > 0) {
        const auto backoff = backoff_for_attempt(
            options_.retry, failures,
            backoff_ordinal_.fetch_add(1, std::memory_order_relaxed));
        // Shutdown-aware: a request_stop() wakes the wait immediately
        // (and short-circuits future backoffs), so teardown never blocks
        // behind a pending sleep of up to max_backoff.
        if (backoff.count() > 0 &&
            !stop_requested_.load(std::memory_order_acquire)) {
          std::unique_lock<std::mutex> lock(stop_mutex_);
          stop_cv_.wait_for(lock, backoff, [this] {
            return stop_requested_.load(std::memory_order_acquire);
          });
        }
      }
      ++out.attempts;
      try {
        // Explain only once a fault has been seen: provenance grids cost
        // allocation on every pass, and a clean route never reads them.
        RouteResult result = attempt(paths[p], saw_fault);
        out.result = std::move(result);
        if (p == 0 && !saw_fault) {
          out.outcome = RouteOutcome::Delivered;
        } else if (p == 0) {
          out.outcome = RouteOutcome::Delivered;
          bump("fault.recovered", recovered_);
        } else {
          out.outcome = RouteOutcome::DeliveredDegraded;
          bump("fault.recovered", recovered_);
          bump("fault.degraded", degraded_);
        }
        return out;
      } catch (const fault::FaultDetected& e) {
        ++failures;
        bump("fault.detected", detected_);
        if (!out.report.has_value()) out.report = e.report();
        last_report = e.report();
        saw_fault = true;
      }
      // Anything other than FaultDetected (bad assignment, logic error)
      // propagates: retrying cannot help and must not mask it.
    }
  }

  out.outcome = RouteOutcome::Failed;
  out.result.reset();
  if (last_report.has_value()) out.report = std::move(last_report);
  bump("fault.gaveup", gaveup_);
  return out;
}

RequestOutcome ResilientRouter::route(const MulticastAssignment& assignment) {
  BRSMN_EXPECTS_MSG(assignment.size() == n_,
                    "assignment size does not match the network");
  obs::TraceSpan span(options_.tracer, "resilient.route");
  return route_ladder(assignment);
}

RequestOutcome ResilientRouter::route_group(GroupId group,
                                            GroupManager& groups) {
  BRSMN_EXPECTS_MSG(groups.network_size() == n_,
                    "group manager width does not match the network");
  obs::TraceSpan span(options_.tracer, "resilient.route_group");
  return run_ladder([&](const RoutePath& path, bool explain) {
    const RouteOptions ro = path_options(path, explain);
    if (!path.feedback) {
      return std::move(groups.route(group, unrolled_, ro).result);
    }
    if (!feedback_) feedback_ = std::make_unique<FeedbackBrsmn>(n_);
    return std::move(groups.route(group, *feedback_, ro).result);
  });
}

std::vector<RequestOutcome> ResilientRouter::route_batch(
    const std::vector<MulticastAssignment>& batch) {
  std::vector<RequestOutcome> outcomes(batch.size());
  if (batch.empty()) return outcomes;
  obs::TraceSpan span(options_.tracer, "resilient.route_batch");

  if (!batch_) {
    batch_ = std::make_unique<ParallelRouter>(n_);
    batch_->set_metrics(options_.metrics);
    batch_->set_tracer(options_.tracer);
  }
  batch_->set_engine(options_.engine);
  batch_->set_self_check(options_.self_check);
  batch_->set_faults(options_.faults);
  batch_->set_plan_cache(options_.plan_cache);

  try {
    std::vector<RouteResult> results = batch_->route_batch(batch);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      outcomes[i].outcome = RouteOutcome::Delivered;
      outcomes[i].result = std::move(results[i]);
      outcomes[i].attempts = 1;
      outcomes[i].path = RoutePath{options_.engine, false};
    }
    return outcomes;
  } catch (const ContractViolation&) {
    // The fast path failed somewhere; the aggregate does not say which
    // results are trustworthy, so re-run every assignment through the
    // ladder. Slower, but exact per-request outcomes.
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    outcomes[i] = route_ladder(batch[i]);
  }
  return outcomes;
}

}  // namespace brsmn::api
