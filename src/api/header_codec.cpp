#include "api/header_codec.hpp"

#include "common/bits.hpp"
#include "common/contracts.hpp"
#include "core/tag_sequence.hpp"

namespace brsmn::api {

std::size_t header_bits(std::size_t n) {
  BRSMN_EXPECTS(is_pow2(n) && n >= 2);
  return 3 * (n - 1);
}

std::vector<bool> encode_header(std::span<const std::size_t> dests,
                                std::size_t n) {
  const std::vector<Tag> seq = encode_sequence(dests, n);
  std::vector<bool> bits;
  bits.reserve(3 * seq.size());
  for (const Tag t : seq) {
    const std::uint8_t enc = encode(t);
    bits.push_back(enc & 0b100);
    bits.push_back(enc & 0b010);
    bits.push_back(enc & 0b001);
  }
  return bits;
}

std::vector<Tag> header_to_sequence(const std::vector<bool>& bits) {
  BRSMN_EXPECTS(bits.size() % 3 == 0);
  const std::size_t count = bits.size() / 3;
  BRSMN_EXPECTS_MSG(is_pow2(count + 1),
                    "header must hold n-1 tags for a power-of-two n");
  std::vector<Tag> seq;
  seq.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint8_t enc =
        static_cast<std::uint8_t>((bits[3 * i] ? 0b100 : 0) |
                                  (bits[3 * i + 1] ? 0b010 : 0) |
                                  (bits[3 * i + 2] ? 0b001 : 0));
    seq.push_back(collapse_eps(decode(enc)));
  }
  return seq;
}

std::vector<std::size_t> decode_header(const std::vector<bool>& bits) {
  return decode_sequence(header_to_sequence(bits));
}

}  // namespace brsmn::api
