#include "api/group_manager.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "api/plan_cache.hpp"
#include "common/bits.hpp"
#include "common/contracts.hpp"
#include "fault/fault_report.hpp"
#include "obs/metrics.hpp"

namespace brsmn::api {

namespace {

bool same_assignment(const MulticastAssignment& a,
                     const MulticastAssignment& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.destinations(i) != b.destinations(i)) return false;
  }
  return true;
}

}  // namespace

std::string_view group_route_mode_name(GroupRouteMode mode) {
  switch (mode) {
    case GroupRouteMode::Uncached: return "uncached";
    case GroupRouteMode::Replayed: return "replayed";
    case GroupRouteMode::Patched: return "patched";
    case GroupRouteMode::Compiled: return "compiled";
  }
  return "?";
}

GroupManager::GroupManager(std::size_t n, GroupManagerConfig config)
    : n_(n),
      config_(config),
      shards_(std::max<std::size_t>(1, config.shards)) {
  BRSMN_EXPECTS(is_pow2(n) && n >= 2);
  BRSMN_EXPECTS(config.max_dirty_fraction >= 0.0 &&
                config.max_dirty_fraction <= 1.0);
}

void GroupManager::bump(std::atomic<std::uint64_t>& raw, obs::Counter* counter,
                        std::uint64_t by) {
  if (by == 0) return;
  raw.fetch_add(by, std::memory_order_relaxed);
  if (counter != nullptr) counter->add(by);
}

std::uint64_t GroupManager::join(GroupId group, std::size_t src,
                                 std::size_t dst) {
  BRSMN_EXPECTS(src < n_ && dst < n_);
  Shard& shard = shard_for(group);
  bool created = false;
  std::uint64_t version = 0;
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.groups.try_emplace(group, n_);
    try {
      it->second.assignment.connect(src, dst);
    } catch (...) {
      // A failed first join must not leave an empty phantom group.
      if (inserted) shard.groups.erase(it);
      throw;
    }
    created = inserted;
    version = ++it->second.version;
  }
  bump(joins_, joins_counter_);
  if (created && live_gauge_ != nullptr) {
    live_gauge_->set(static_cast<double>(group_count()));
  }
  return version;
}

std::uint64_t GroupManager::leave(GroupId group, std::size_t src,
                                  std::size_t dst) {
  BRSMN_EXPECTS(src < n_ && dst < n_);
  Shard& shard = shard_for(group);
  std::uint64_t version = 0;
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.groups.find(group);
    BRSMN_EXPECTS_MSG(it != shard.groups.end(), "leave of an unknown group");
    it->second.assignment.disconnect(src, dst);
    version = ++it->second.version;
  }
  bump(leaves_, leaves_counter_);
  return version;
}

GroupSnapshot GroupManager::snapshot(GroupId group) const {
  const Shard& shard = shard_for(group);
  const std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.groups.find(group);
  BRSMN_EXPECTS_MSG(it != shard.groups.end(), "snapshot of an unknown group");
  return GroupSnapshot{it->second.assignment, it->second.version};
}

bool GroupManager::contains(GroupId group) const {
  const Shard& shard = shard_for(group);
  const std::lock_guard<std::mutex> lock(shard.mu);
  return shard.groups.find(group) != shard.groups.end();
}

bool GroupManager::erase(GroupId group) {
  Shard& shard = shard_for(group);
  bool existed = false;
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    existed = shard.groups.erase(group) != 0;
  }
  if (existed && live_gauge_ != nullptr) {
    live_gauge_->set(static_cast<double>(group_count()));
  }
  return existed;
}

std::size_t GroupManager::group_count() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.groups.size();
  }
  return total;
}

void GroupManager::update_planned(GroupId group, std::size_t impl_index,
                                  const MulticastAssignment& assignment,
                                  std::uint64_t version) {
  Shard& shard = shard_for(group);
  const std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.groups.find(group);
  if (it == shard.groups.end()) return;  // erased while routing
  PlannedBase& planned = it->second.planned[impl_index];
  // Concurrent routes of one group may finish out of order; the base
  // pointer only ever advances, so the cache entry it names is the
  // newest assignment this manager planned.
  if (planned.assignment.has_value() && planned.version > version) return;
  planned.assignment = assignment;
  planned.version = version;
}

template <fault::ImplKind IMPL, typename Net>
GroupRouteReport GroupManager::route_impl(GroupId group, Net& net,
                                          const RouteOptions& options) {
  BRSMN_EXPECTS_MSG(net.size() == n_,
                    "network width does not match the group manager");
  const auto impl_index = static_cast<std::size_t>(IMPL);

  GroupRouteReport report;
  std::optional<MulticastAssignment> assignment;
  std::optional<MulticastAssignment> base;
  {
    Shard& shard = shard_for(group);
    const std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.groups.find(group);
    BRSMN_EXPECTS_MSG(it != shard.groups.end(), "route of an unknown group");
    assignment.emplace(it->second.assignment);
    report.version = it->second.version;
    base = it->second.planned[impl_index].assignment;
  }
  bump(routes_, routes_counter_);

  // No cache, or a capture request a replay cannot serve: route as-is
  // (Brsmn::route itself skips the cache when capture_levels is set).
  if (options.plan_cache == nullptr || options.capture_levels) {
    report.result = net.route(*assignment, options);
    report.mode = GroupRouteMode::Uncached;
    return report;
  }

  PlanCache& cache = *options.plan_cache;
  RouteOptions inner = options;
  inner.plan_cache = nullptr;

  // 1. Exact hit for the current assignment: replay. Mirrors
  //    route_via_cache, including the invalidate-then-recompile path
  //    for a replay that trips the self-check.
  if (PlanCache::PlanPtr plan = cache.lookup(*assignment, IMPL,
                                             options.explain)) {
    try {
      report.result = net.route_replay(*plan, inner);
      report.mode = GroupRouteMode::Replayed;
      bump(replayed_, replayed_counter_);
      update_planned(group, impl_index, *assignment, report.version);
      return report;
    } catch (const fault::FaultDetected&) {
      cache.invalidate(*assignment, IMPL);
      if (options.faults != nullptr) throw;
    }
  }

  if (options.faults != nullptr) {
    // Never compile or patch while faults are armed: a plan built
    // through a fault would freeze corrupted checkpoints. Route cold
    // without inserting.
    report.result = net.route(*assignment, inner);
    report.mode = GroupRouteMode::Uncached;
    return report;
  }

  // 2. Patch from the plan compiled for this group's previous
  //    assignment, if the cache still holds it.
  if (base.has_value() && !same_assignment(*base, *assignment)) {
    if (PlanCache::PlanPtr base_plan =
            cache.lookup(*base, IMPL, options.explain)) {
      auto patched = std::make_shared<RoutePlan>();
      bool base_faulted = false;
      try {
        planner::PatchOutcome outcome = planner::patch_route(
            net, *assignment, *base_plan, inner, *patched,
            planner::PatchConfig{config_.max_dirty_fraction});
        if (outcome.patched) {
          cache.insert(*assignment, IMPL, std::move(patched));
          update_planned(group, impl_index, *assignment, report.version);
          report.result = std::move(outcome.result);
          report.mode = GroupRouteMode::Patched;
          report.levels_reused = outcome.levels_reused;
          report.levels_recompiled = outcome.levels_recompiled;
          bump(patched_, patched_counter_);
          bump(levels_reused_, levels_reused_counter_, outcome.levels_reused);
          bump(levels_recompiled_, levels_recompiled_counter_,
               outcome.levels_recompiled);
          return report;
        }
        bump(abandoned_, abandoned_counter_);
      } catch (const fault::FaultDetected&) {
        // The base plan's checkpoints are inconsistent with what its
        // reused levels produce — a stale or corrupt entry. Invalidate
        // exactly that entry and compile cold below.
        base_faulted = true;
        bump(faulted_, faulted_counter_);
      }
      if (base_faulted) cache.invalidate(*base, IMPL);
    }
  }

  // 3. Cold compile and insert; this plan is the next delta's base.
  auto fresh = std::make_shared<RoutePlan>();
  report.result = planner::compile_route(net, *assignment, inner, *fresh);
  cache.insert(*assignment, IMPL, std::move(fresh));
  update_planned(group, impl_index, *assignment, report.version);
  report.mode = GroupRouteMode::Compiled;
  bump(compiled_, compiled_counter_);
  return report;
}

GroupRouteReport GroupManager::route(GroupId group, Brsmn& net,
                                     const RouteOptions& options) {
  return route_impl<fault::ImplKind::Unrolled>(group, net, options);
}

GroupRouteReport GroupManager::route(GroupId group, FeedbackBrsmn& net,
                                     const RouteOptions& options) {
  return route_impl<fault::ImplKind::Feedback>(group, net, options);
}

std::uint64_t GroupManager::joins() const noexcept {
  return joins_.load(std::memory_order_relaxed);
}
std::uint64_t GroupManager::leaves() const noexcept {
  return leaves_.load(std::memory_order_relaxed);
}
std::uint64_t GroupManager::routes() const noexcept {
  return routes_.load(std::memory_order_relaxed);
}
std::uint64_t GroupManager::plans_patched() const noexcept {
  return patched_.load(std::memory_order_relaxed);
}
std::uint64_t GroupManager::plans_compiled() const noexcept {
  return compiled_.load(std::memory_order_relaxed);
}
std::uint64_t GroupManager::plans_replayed() const noexcept {
  return replayed_.load(std::memory_order_relaxed);
}
std::uint64_t GroupManager::patches_abandoned() const noexcept {
  return abandoned_.load(std::memory_order_relaxed);
}
std::uint64_t GroupManager::patches_faulted() const noexcept {
  return faulted_.load(std::memory_order_relaxed);
}

void GroupManager::attach_metrics(obs::MetricRegistry& registry,
                                  std::string_view prefix) {
  const std::string base(prefix);
  joins_counter_ = &registry.counter(base + ".joins");
  leaves_counter_ = &registry.counter(base + ".leaves");
  routes_counter_ = &registry.counter(base + ".routes");
  live_gauge_ = &registry.gauge(base + ".live");
  live_gauge_->set(static_cast<double>(group_count()));
  patched_counter_ = &registry.counter("plan_patch.patched");
  compiled_counter_ = &registry.counter("plan_patch.compiled");
  replayed_counter_ = &registry.counter("plan_patch.replayed");
  abandoned_counter_ = &registry.counter("plan_patch.abandoned");
  faulted_counter_ = &registry.counter("plan_patch.faulted");
  levels_reused_counter_ = &registry.counter("plan_patch.levels_reused");
  levels_recompiled_counter_ =
      &registry.counter("plan_patch.levels_recompiled");
}

}  // namespace brsmn::api
