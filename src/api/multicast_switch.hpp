// The adoption-grade facade: an epoch-based multicast cell switch.
//
// Clients submit cells (payload + destination set) at input ports;
// route_epoch() pushes the whole batch through the self-routing fabric
// and returns the per-output deliveries. This is the interface a packet
// scheduler or an interconnect simulator would program against — the
// BRSMN machinery (tag trees, scatter/quasisort, feedback passes) stays
// behind it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/brsmn.hpp"
#include "core/feedback.hpp"

namespace brsmn::api {

/// One cell delivered at an output port after an epoch.
struct Delivery {
  std::size_t output = 0;
  std::size_t source = 0;
  std::vector<std::uint8_t> payload;  ///< copy of the submitted payload
};

class MulticastSwitch {
 public:
  /// Which routing engine backs the switch.
  enum class Engine {
    kUnrolled,  ///< the full O(n log^2 n)-cost pipeline (Fig. 1)
    kFeedback,  ///< the O(n log n)-cost feedback fabric (Fig. 13)
  };

  explicit MulticastSwitch(std::size_t ports,
                           Engine engine = Engine::kUnrolled);

  std::size_t ports() const noexcept { return ports_; }
  Engine engine() const noexcept { return engine_; }

  /// Queue a cell at `input` for the current epoch.
  /// Throws ContractViolation if the input already holds a cell this
  /// epoch, if `destinations` is empty, or if any destination is already
  /// claimed by another queued cell (multicast assignments must have
  /// disjoint destination sets).
  void submit(std::size_t input, std::vector<std::uint8_t> payload,
              const std::vector<std::size_t>& destinations);

  /// Number of cells currently queued.
  std::size_t pending() const noexcept { return pending_; }

  /// Route everything queued; returns the deliveries sorted by output
  /// port and clears the queue. An epoch with no cells returns {}.
  std::vector<Delivery> route_epoch();

  /// Stats of the most recent route_epoch().
  const RoutingStats& last_stats() const noexcept { return last_stats_; }

  /// Attach a registry: each route_epoch() records route.* phase timings
  /// and api.cells_per_epoch / api.deliveries_per_epoch histograms.
  /// Pass nullptr to detach.
  void set_metrics(obs::MetricRegistry* metrics) noexcept {
    metrics_ = metrics;
  }

 private:
  std::size_t ports_;
  Engine engine_;
  obs::MetricRegistry* metrics_ = nullptr;
  MulticastAssignment assignment_;
  std::vector<std::vector<std::uint8_t>> payloads_;
  std::vector<bool> occupied_;
  std::size_t pending_ = 0;
  RoutingStats last_stats_;
  std::unique_ptr<Brsmn> unrolled_;
  std::unique_ptr<FeedbackBrsmn> feedback_;
};

}  // namespace brsmn::api
