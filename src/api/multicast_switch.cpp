#include "api/multicast_switch.hpp"

#include "common/contracts.hpp"
#include "obs/metrics.hpp"

namespace brsmn::api {

MulticastSwitch::MulticastSwitch(std::size_t ports, Engine engine)
    : ports_(ports),
      engine_(engine),
      assignment_(ports),
      payloads_(ports),
      occupied_(ports, false) {
  if (engine == Engine::kUnrolled) {
    unrolled_ = std::make_unique<Brsmn>(ports);
  } else {
    feedback_ = std::make_unique<FeedbackBrsmn>(ports);
  }
}

void MulticastSwitch::submit(std::size_t input,
                             std::vector<std::uint8_t> payload,
                             const std::vector<std::size_t>& destinations) {
  BRSMN_EXPECTS(input < ports_);
  BRSMN_EXPECTS_MSG(!occupied_[input], "input already holds a cell");
  BRSMN_EXPECTS_MSG(!destinations.empty(),
                    "a cell needs at least one destination");
  // Validate everything up front so a rejected submit leaves the epoch
  // untouched (connect() would otherwise half-register the cell).
  std::vector<bool> seen(ports_, false);
  for (const std::size_t d : destinations) {
    BRSMN_EXPECTS(d < ports_);
    BRSMN_EXPECTS_MSG(!seen[d], "duplicate destination in one cell");
    BRSMN_EXPECTS_MSG(!assignment_.output_claimed(d),
                      "destination already claimed this epoch");
    seen[d] = true;
  }
  for (const std::size_t d : destinations) assignment_.connect(input, d);
  payloads_[input] = std::move(payload);
  occupied_[input] = true;
  ++pending_;
}

std::vector<Delivery> MulticastSwitch::route_epoch() {
  const std::size_t cells = pending_;
  std::vector<Delivery> deliveries;
  if (pending_ > 0) {
    RouteOptions options;
    options.metrics = metrics_;
    const RouteResult result = engine_ == Engine::kUnrolled
                                   ? unrolled_->route(assignment_, options)
                                   : feedback_->route(assignment_, options);
    last_stats_ = result.stats;
    for (std::size_t out = 0; out < ports_; ++out) {
      if (!result.delivered[out]) continue;
      const std::size_t src = *result.delivered[out];
      deliveries.push_back(Delivery{out, src, payloads_[src]});
    }
  } else {
    last_stats_ = RoutingStats{};
  }
  // Reset the epoch.
  assignment_ = MulticastAssignment(ports_);
  for (auto& p : payloads_) p.clear();
  std::fill(occupied_.begin(), occupied_.end(), false);
  pending_ = 0;
  if constexpr (obs::kEnabled) {
    if (metrics_ != nullptr) {
      metrics_->histogram("api.cells_per_epoch")
          .record(static_cast<double>(cells));
      metrics_->histogram("api.deliveries_per_epoch")
          .record(static_cast<double>(deliveries.size()));
    }
  }
  return deliveries;
}

}  // namespace brsmn::api
