#include "api/engine_pool.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/contracts.hpp"

namespace brsmn::api {

std::vector<WorkFailure> FailureLog::take_sorted() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<WorkFailure> out = std::move(failures_);
  failures_.clear();
  std::sort(out.begin(), out.end(),
            [](const WorkFailure& a, const WorkFailure& b) {
              return a.index < b.index;
            });
  return out;
}

void throw_aggregated(std::string_view context, std::string_view noun,
                      const std::vector<WorkFailure>& failures,
                      const std::function<std::string(std::size_t)>& label) {
  BRSMN_EXPECTS(!failures.empty());
  bool all_contract = true;
  std::string message;
  message += context;
  message += ": " + std::to_string(failures.size()) + " ";
  message += noun;
  message += "(s) failed";
  for (const WorkFailure& f : failures) {
    message += "; ";
    message += noun;
    message += " " + label(f.index) + ": ";
    try {
      std::rethrow_exception(f.error);
    } catch (const ContractViolation& e) {
      message += e.what();
    } catch (const std::exception& e) {
      all_contract = false;
      message += e.what();
    } catch (...) {
      all_contract = false;
      message += "unknown error";
    }
  }
  if (all_contract) throw ContractViolation(message);
  throw std::runtime_error(message);
}

}  // namespace brsmn::api
