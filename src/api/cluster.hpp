// Sharded multi-fabric cluster with a health-tracking control plane.
//
// One BRSMN fabric is a single failure domain: a stuck switch degrades
// every route and a dead fabric takes the whole service down with it. The
// cluster runs F independent fabric replicas (shards) behind one submit
// surface and turns replica failure into a routing decision:
//
//   * Placement is rendezvous (highest-random-weight) hashing on the
//     assignment fingerprint (core/route_plan.hpp) — the same key the
//     plan cache uses — so repeats of an assignment land on the same
//     shard and keep that shard's PlanCache hot, and losing one shard
//     moves only that shard's keys (each to its deterministic secondary,
//     core/placement.hpp) instead of reshuffling the world.
//   * Each shard owns a bounded MPMC ingress queue (api/bounded_queue.hpp)
//     feeding worker threads that route through per-worker
//     ResilientRouters, so a fault inside a shard is first absorbed by
//     the retry/fallback ladder and only then becomes a health event.
//   * A control plane tracks per-shard health from rolling outcome
//     windows, ingress queue depth, and the shard's p99 route latency
//     (obs histograms), classifying each shard Healthy / Degraded /
//     Quarantined. Quarantined shards are routed around; every
//     canary_interval-th request that *would* have used one is sent in
//     anyway as a canary, and a probation run of consecutive canary
//     successes re-admits the shard.
//
// Chaos seam: ClusterConfig::shard_faults gives each shard its own
// FaultInjector, so a chaos schedule can corrupt or kill exactly one
// replica while its peers stay clean — the N-1 property the cluster
// bench (bench/bench_cluster_chaos.cpp) gates: zero misdeliveries and
// bounded p99 degradation with one shard lost.
//
// Delivery contract: every submitted request resolves to exactly one
// ClusterOutcome — Delivered, DeliveredDegraded, Failed, or rejected at
// admission — and a Delivered result is the *correct* delivery vector
// (optionally re-verified against core expected_delivery with
// verify_delivery). Nothing is silently dropped and nothing is
// misdelivered; the cluster.* counters prove the conservation.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "api/bounded_queue.hpp"
#include "api/group_manager.hpp"
#include "api/resilient_router.hpp"
#include "core/multicast_assignment.hpp"

namespace brsmn::obs {
class Counter;
class FabricHeatmap;
class Histogram;
class MetricRegistry;
class Tracer;
}  // namespace brsmn::obs

namespace brsmn::fault {
class FaultInjector;
}  // namespace brsmn::fault

namespace brsmn::api {

class PlanCache;

/// Control-plane classification of one shard.
enum class ShardState : std::uint8_t {
  Healthy,      ///< full traffic share
  Degraded,     ///< serving, but watched: elevated degraded rate, deep
                ///< queue, or p99 over budget
  Quarantined,  ///< routed around; only canaries admitted until probation
                ///< completes
};

std::string_view shard_state_name(ShardState state);

/// When the control plane moves a shard between states. Rates are over a
/// rolling window of recent request outcomes on that shard.
struct ClusterHealthPolicy {
  /// Rolling outcome window length per shard.
  std::size_t window = 64;
  /// No rate-based transition until the window holds this many outcomes
  /// (a single early failure must not quarantine a cold shard).
  std::size_t min_observations = 16;
  /// Quarantine when the windowed failure rate reaches this fraction.
  double quarantine_failure_rate = 0.5;
  /// Degrade when the windowed degraded-delivery rate reaches this.
  double degrade_degraded_rate = 0.25;
  /// Degrade when the ingress queue is at least this deep (0 = off).
  std::size_t degrade_queue_depth = 0;
  /// Degrade when the shard's route_ns p99 reaches this many ns
  /// (0 = off; needs a metrics registry).
  double degrade_p99_ns = 0.0;
  /// Consecutive successful canaries that end a quarantine.
  std::size_t probation_successes = 8;
  /// Every this-many-th request whose placement prefers a quarantined
  /// shard is sent to it anyway as a canary probe.
  std::size_t canary_interval = 8;
  /// Control-plane evaluation period. Zero runs no control thread —
  /// poll_health() is then the (deterministic, test-friendly) driver.
  std::chrono::milliseconds probe_interval{0};
};

/// Cluster construction knobs.
struct ClusterConfig {
  /// Fabric replicas. Placement is stable in this count.
  std::size_t shards = 4;
  /// Worker threads (and ResilientRouters) per shard.
  std::size_t workers_per_shard = 1;
  /// Per-shard ingress queue bound; submit() blocks when full.
  std::size_t queue_capacity = 64;
  /// Primary datapath engine for every shard's routers.
  RouteEngine engine = RouteEngine::Scalar;
  /// Retry/fallback policy per router. jitter_seed is re-derived per
  /// worker from `seed` (mixed with the user's jitter_seed), so workers
  /// never share a jitter stream.
  RetryPolicy retry{};
  bool self_check = true;
  /// Give each shard a shared PlanCache so repeats placed there replay.
  bool plan_cache = true;
  std::size_t plan_cache_capacity = 256;
  /// Base seed for per-worker jitter streams (derive from test_seed() in
  /// tests for BRSMN_TEST_SEED reproducibility).
  std::uint64_t seed = 1;
  ClusterHealthPolicy health{};
  obs::MetricRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
  /// Per-shard fault injection: shard_faults[s] (when present and
  /// non-null) becomes shard s's routers' injector. The vector may be
  /// shorter than `shards`; missing entries mean no injector. Injectors
  /// must outlive the cluster.
  std::vector<fault::FaultInjector*> shard_faults{};
  /// Re-check every successful delivery vector against core
  /// expected_delivery; mismatches count as misdeliveries (cluster
  /// bench gate). Costs one reference routing per request.
  bool verify_delivery = false;
  /// Per-worker fabric heatmaps, merged and readable via heatmap().
  bool heatmap = false;
  /// Metric namespace ("cluster" => cluster.submitted, ...).
  std::string metrics_prefix = "cluster";
};

/// Terminal state of one submitted request.
struct ClusterOutcome {
  /// The resilient router's verdict (Failed with attempts == 0 when the
  /// serving shard was killed, or when the request was rejected).
  RequestOutcome request{};
  /// Shard that served (or was about to serve) the request.
  std::size_t shard = 0;
  /// Shard placement preferred before health-based rerouting.
  std::size_t primary_shard = 0;
  /// Served by a non-primary shard because the primary was quarantined.
  bool rerouted = false;
  /// Deliberately sent into a quarantined shard as a probation probe.
  bool canary = false;
  /// Refused at admission (cluster stopping); request.outcome is Failed
  /// with zero attempts.
  bool rejected = false;
  /// verify_delivery found a wrong delivery vector (never expected).
  bool misdelivered = false;
};

/// Control-plane snapshot of one shard, for tests and reports.
struct ShardStatus {
  ShardState state = ShardState::Healthy;
  bool killed = false;
  std::size_t queue_depth = 0;
  std::size_t observations = 0;  ///< outcomes in the rolling window
  double failure_rate = 0.0;     ///< over the window
  double degraded_rate = 0.0;    ///< over the window
  std::uint64_t served = 0;      ///< lifetime requests finished here
  std::uint64_t failed = 0;
  std::uint64_t canaries = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t readmissions = 0;
};

/// Lifetime totals across the cluster (all atomically maintained, so a
/// live read is approximate only in ordering, never in conservation
/// after stop(): submitted == completed + rejected).
struct ClusterTotals {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  ///< delivered + delivered_degraded + failed
  std::uint64_t delivered = 0;
  std::uint64_t delivered_degraded = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t rerouted = 0;
  std::uint64_t canaries = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t readmissions = 0;
  std::uint64_t misdelivered = 0;
};

class Cluster {
 public:
  /// Builds every shard's queue, plan cache, routers and worker threads
  /// eagerly; starts the control thread when probe_interval > 0.
  Cluster(std::size_t n, const ClusterConfig& config = {});
  ~Cluster();  ///< stop()s if still running

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  std::size_t size() const noexcept { return n_; }
  std::size_t shards() const noexcept { return shards_.size(); }
  const ClusterConfig& config() const noexcept { return config_; }

  /// Queue one assignment for routing; the future resolves when a shard
  /// worker finishes it. Blocks while the target shard's ingress queue
  /// is full (backpressure); resolves rejected when the cluster is
  /// stopping.
  std::future<ClusterOutcome> submit(MulticastAssignment assignment);

  /// Queue one dynamic-group route, placed by the group id so a group's
  /// repeats stay on one shard (and patch its cache incrementally).
  /// `groups` must outlive the future's resolution; GroupManager is
  /// internally synchronized per group.
  std::future<ClusterOutcome> submit_group(GroupManager& groups,
                                           GroupId group);

  /// Synchronous conveniences over submit().
  ClusterOutcome route(MulticastAssignment assignment);
  std::vector<ClusterOutcome> route_batch(
      std::vector<MulticastAssignment> batch);

  /// Chaos controls: a killed shard still accepts queued work but fails
  /// every request instantly — the control plane has to *notice* via the
  /// failure window, exactly as it would a dead real fabric. Killing is
  /// deliberately invisible to placement until quarantine happens.
  void kill_shard(std::size_t shard);
  void revive_shard(std::size_t shard);

  /// One control-plane evaluation pass over every shard (the control
  /// thread calls this every probe_interval; with probe_interval zero,
  /// tests drive transitions deterministically by calling it directly).
  void poll_health();

  ShardState shard_state(std::size_t shard) const;
  ShardStatus shard_status(std::size_t shard) const;
  ClusterTotals totals() const;

  /// Merged view of every worker's fabric heatmap (empty map when
  /// ClusterConfig::heatmap was false). Call after stop() — or during a
  /// quiescent moment — for a consistent plane.
  const obs::FabricHeatmap& heatmap();

  /// Graceful shutdown: refuse new submissions, wake any router sleeping
  /// in a retry backoff, drain every queued request to its promised
  /// outcome, then join workers and the control thread. Idempotent.
  void stop();
  bool stopping() const noexcept {
    return stopping_.load(std::memory_order_acquire);
  }

 private:
  struct Request;
  struct Shard;

  std::future<ClusterOutcome> enqueue(Request request, std::uint64_t key);
  std::size_t choose_shard(std::uint64_t key, std::size_t& primary,
                           bool& canary);
  void worker_loop(std::size_t shard_index, std::size_t worker_index);
  void serve(Shard& shard, std::size_t shard_index, std::size_t worker_index,
             Request request);
  void record_outcome(Shard& shard, const ClusterOutcome& outcome);
  void control_loop();
  void bump(obs::Counter* counter);

  std::size_t n_;
  ClusterConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;  ///< guarded by stop_once_mutex_
  std::mutex stop_once_mutex_;
  /// Serializes control-plane evaluations (control thread vs. manual
  /// poll_health callers), so state transitions are single-writer.
  std::mutex poll_mutex_;

  /// Canary pacing across all placements that hit a quarantined primary.
  std::atomic<std::uint64_t> canary_tick_{0};

  // Lifetime totals (see ClusterTotals).
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> delivered_degraded_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> rerouted_{0};
  std::atomic<std::uint64_t> canaries_{0};
  std::atomic<std::uint64_t> quarantines_{0};
  std::atomic<std::uint64_t> readmissions_{0};
  std::atomic<std::uint64_t> misdelivered_{0};

  // Cached metric instruments (null when no registry / obs disabled).
  obs::Counter* submitted_counter_ = nullptr;
  obs::Counter* delivered_counter_ = nullptr;
  obs::Counter* delivered_degraded_counter_ = nullptr;
  obs::Counter* failed_counter_ = nullptr;
  obs::Counter* rejected_counter_ = nullptr;
  obs::Counter* rerouted_counter_ = nullptr;
  obs::Counter* canaries_counter_ = nullptr;
  obs::Counter* quarantines_counter_ = nullptr;
  obs::Counter* readmissions_counter_ = nullptr;
  obs::Counter* misdelivered_counter_ = nullptr;
  obs::Histogram* request_hist_ = nullptr;  ///< submit -> outcome, ns

  // Control thread (only when probe_interval > 0).
  std::thread control_thread_;
  std::mutex control_mutex_;
  std::condition_variable control_cv_;
  bool control_stop_ = false;

  // Merged heatmap target for heatmap().
  std::unique_ptr<obs::FabricHeatmap> merged_heatmap_;
};

}  // namespace brsmn::api
