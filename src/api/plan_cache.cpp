#include "api/plan_cache.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/contracts.hpp"
#include "fault/fault_report.hpp"
#include "obs/metrics.hpp"

namespace brsmn::api {

namespace {

/// Stream the canonical key of (assignment, impl) — [n, impl, per input:
/// destination count, destinations...] — through `fn` without
/// materializing it. Destination lists are stored sorted, so equal
/// assignments stream equal sequences.
template <typename Fn>
void for_each_key_word(const MulticastAssignment& assignment,
                       fault::ImplKind impl, Fn&& fn) {
  if (!fn(static_cast<std::uint64_t>(assignment.size()))) return;
  if (!fn(static_cast<std::uint64_t>(impl))) return;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    const auto& dests = assignment.destinations(i);
    if (!fn(static_cast<std::uint64_t>(dests.size()))) return;
    for (const std::size_t d : dests) {
      if (!fn(static_cast<std::uint64_t>(d))) return;
    }
  }
}

/// Exact comparison of the streamed key against a stored flattened key —
/// the collision guard behind the hash index.
bool key_matches(const MulticastAssignment& assignment, fault::ImplKind impl,
                 const std::vector<std::uint64_t>& key) {
  std::size_t pos = 0;
  bool equal = true;
  for_each_key_word(assignment, impl, [&](std::uint64_t v) {
    if (pos >= key.size() || key[pos] != v) {
      equal = false;
      return false;
    }
    ++pos;
    return true;
  });
  return equal && pos == key.size();
}

std::vector<std::uint64_t> flatten_key(const MulticastAssignment& assignment,
                                       fault::ImplKind impl) {
  std::size_t words = 2;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    words += 1 + assignment.destinations(i).size();
  }
  std::vector<std::uint64_t> key;
  key.reserve(words);
  for_each_key_word(assignment, impl, [&](std::uint64_t v) {
    key.push_back(v);
    return true;
  });
  return key;
}

void bump(std::atomic<std::uint64_t>& raw, obs::Counter* counter) {
  raw.fetch_add(1, std::memory_order_relaxed);
  if (counter != nullptr) counter->add(1);
}

}  // namespace

PlanCache::PlanCache(PlanCacheConfig config)
    : shards_(std::max<std::size_t>(1, config.shards)),
      per_shard_cap_(std::max<std::size_t>(
          1, std::max<std::size_t>(1, config.capacity) /
                 std::max<std::size_t>(1, config.shards))),
      force_hash_collisions_(config.force_hash_collisions) {}

std::uint64_t PlanCache::key_hash(const MulticastAssignment& assignment,
                                  fault::ImplKind impl) const {
  if (force_hash_collisions_) return 0x9e3779b97f4a7c15ull;
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a 64
  for_each_key_word(assignment, impl, [&](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
    return true;
  });
  return h;
}

PlanCache::PlanPtr PlanCache::lookup(const MulticastAssignment& assignment,
                                     fault::ImplKind impl,
                                     bool require_explanation) {
  const std::uint64_t h = key_hash(assignment, impl);
  Shard& shard = shard_for(h);
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, end] = shard.index.equal_range(h);
    for (; it != end; ++it) {
      Entry& entry = *it->second;
      if (!key_matches(assignment, impl, entry.key)) continue;
      if (require_explanation && !entry.plan->explanation.has_value()) break;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      bump(hits_, hits_counter_);
      return entry.plan;
    }
  }
  bump(misses_, misses_counter_);
  return nullptr;
}

bool PlanCache::erase_locked(Shard& shard, std::uint64_t hash,
                             const MulticastAssignment& assignment,
                             fault::ImplKind impl) {
  auto [it, end] = shard.index.equal_range(hash);
  for (; it != end; ++it) {
    if (!key_matches(assignment, impl, it->second->key)) continue;
    shard.lru.erase(it->second);
    shard.index.erase(it);
    return true;
  }
  return false;
}

void PlanCache::insert(const MulticastAssignment& assignment,
                       fault::ImplKind impl, PlanPtr plan) {
  BRSMN_EXPECTS(plan != nullptr);
  const std::uint64_t h = key_hash(assignment, impl);
  Shard& shard = shard_for(h);
  std::size_t evicted = 0;
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    erase_locked(shard, h, assignment, impl);
    shard.lru.push_front(Entry{h, flatten_key(assignment, impl),
                               std::move(plan)});
    shard.index.emplace(h, shard.lru.begin());
    while (shard.lru.size() > per_shard_cap_) {
      const auto victim = std::prev(shard.lru.end());
      auto [it, end] = shard.index.equal_range(victim->hash);
      for (; it != end; ++it) {
        if (it->second == victim) {
          shard.index.erase(it);
          break;
        }
      }
      shard.lru.pop_back();
      ++evicted;
    }
  }
  for (std::size_t i = 0; i < evicted; ++i) {
    bump(evictions_, evictions_counter_);
  }
}

void PlanCache::invalidate(const MulticastAssignment& assignment,
                           fault::ImplKind impl) {
  const std::uint64_t h = key_hash(assignment, impl);
  Shard& shard = shard_for(h);
  bool erased = false;
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    erased = erase_locked(shard, h, assignment, impl);
  }
  if (erased) bump(invalidations_, invalidations_counter_);
}

void PlanCache::clear() {
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
  }
}

std::size_t PlanCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

void PlanCache::attach_metrics(obs::MetricRegistry& registry,
                               std::string_view prefix) {
  const std::string base(prefix);
  hits_counter_ = &registry.counter(base + ".hits");
  misses_counter_ = &registry.counter(base + ".misses");
  evictions_counter_ = &registry.counter(base + ".evictions");
  invalidations_counter_ = &registry.counter(base + ".invalidations");
}

namespace {

template <fault::ImplKind IMPL, typename Net>
RouteResult route_via_cache_impl(Net& net,
                                 const MulticastAssignment& assignment,
                                 const RouteOptions& options) {
  PlanCache& cache = *options.plan_cache;
  RouteOptions inner = options;
  inner.plan_cache = nullptr;
  if (PlanCache::PlanPtr plan =
          cache.lookup(assignment, IMPL, options.explain)) {
    try {
      return net.route_replay(*plan, inner);
    } catch (const fault::FaultDetected&) {
      cache.invalidate(assignment, IMPL);
      // With an injector armed the detection is the contract: surface it
      // (the next route recompiles). Without one, the cached plan itself
      // must be stale — fall through to a cold recompile.
      if (options.faults != nullptr) throw;
    }
  }
  if (options.faults != nullptr) {
    // Never compile a plan while faults are armed; route cold without
    // inserting.
    return net.route(assignment, inner);
  }
  auto fresh = std::make_shared<RoutePlan>();
  RouteResult result = planner::compile_route(net, assignment, inner, *fresh);
  cache.insert(assignment, IMPL, std::move(fresh));
  return result;
}

}  // namespace

RouteResult route_via_cache(Brsmn& net, const MulticastAssignment& assignment,
                            const RouteOptions& options) {
  return route_via_cache_impl<fault::ImplKind::Unrolled>(net, assignment,
                                                         options);
}

RouteResult route_via_cache(FeedbackBrsmn& net,
                            const MulticastAssignment& assignment,
                            const RouteOptions& options) {
  return route_via_cache_impl<fault::ImplKind::Feedback>(net, assignment,
                                                         options);
}

}  // namespace brsmn::api
