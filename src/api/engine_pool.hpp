// The reusable engine-pool layer under ParallelRouter and the cluster.
//
// ParallelRouter's original value was three intertwined mechanisms: a
// set of per-worker-slot engines kept alive across batches (building an
// engine allocates every level BSN, so per-batch construction would
// dominate small batches), an atomic work queue fanning a batch across
// worker threads, and failure aggregation that drains the whole queue
// before rethrowing every failure as one batch-ordered exception. The
// sharded cluster (api/cluster.hpp) needs exactly the same slot
// discipline for its per-shard router pools, so the mechanisms live here
// as a standalone layer: EnginePool<Engine> owns the slots and the
// fan-out, FailureLog/throw_aggregated own the error story, and
// ParallelRouter composes them instead of hand-rolling the loop.
//
// Thread-safety contract: slot t is only touched by worker t while a
// for_each is running (the pool itself spawns the threads), so the lazy
// construction needs no lock; between runs any thread may inspect the
// pool.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace brsmn::api {

/// One failed work item: its index in the submitted range and the
/// exception that killed it.
struct WorkFailure {
  std::size_t index = 0;
  std::exception_ptr error;
};

/// Thread-safe failure collector shared by the workers of one fan-out.
/// Recording never throws away successes: the pool keeps draining the
/// queue after a failure so one poisoned item cannot hide the rest.
class FailureLog {
 public:
  void record(std::size_t index, std::exception_ptr error) {
    const std::lock_guard<std::mutex> lock(mutex_);
    failures_.push_back({index, std::move(error)});
  }

  bool empty() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return failures_.empty();
  }

  /// Move the failures out, sorted by item index so downstream messages
  /// are deterministic regardless of worker scheduling.
  std::vector<WorkFailure> take_sorted();

 private:
  mutable std::mutex mutex_;
  std::vector<WorkFailure> failures_;
};

/// Aggregate `failures` into one exception and throw it. The message is
/// "<context>: k <noun>(s) failed; <noun> <label(index)>: <what>; ..."
/// and the thrown type stays ContractViolation when every underlying
/// failure was one, so callers can still catch the same type a single
/// failure would have raised. `label` renders an item index for the
/// message (batch index, group id, ...). Precondition: !failures.empty().
[[noreturn]] void throw_aggregated(
    std::string_view context, std::string_view noun,
    const std::vector<WorkFailure>& failures,
    const std::function<std::string(std::size_t)>& label);

/// A pool of per-worker-slot engines with an atomic-queue parallel
/// for_each. `Engine` is anything route-capable a worker owns exclusively
/// during a run — Brsmn for ParallelRouter, ResilientRouter for a cluster
/// shard.
template <typename Engine>
class EnginePool {
 public:
  using Factory = std::function<std::unique_ptr<Engine>(unsigned slot)>;

  EnginePool(unsigned slots, Factory factory)
      : factory_(std::move(factory)), engines_(slots) {}

  unsigned slots() const noexcept {
    return static_cast<unsigned>(engines_.size());
  }

  /// Engines constructed so far (lazily, one per slot on first use);
  /// exposed so tests can assert they persist across runs.
  unsigned built() const noexcept {
    unsigned built = 0;
    for (const auto& e : engines_) built += (e != nullptr);
    return built;
  }

  /// The slot's engine, constructed on first use.
  Engine& engine(unsigned slot) {
    if (!engines_[slot]) engines_[slot] = factory_(slot);
    return *engines_[slot];
  }

  /// Fan items [0, count) across min(slots, count) worker threads. Each
  /// worker claims indices from a shared atomic counter and calls
  /// item(engine, worker, index); exceptions are recorded (never
  /// propagated mid-run, so every remaining item still runs) and returned
  /// sorted by item index — empty means every item succeeded.
  /// `scope(worker, body)` wraps each worker's whole run — the seam where
  /// ParallelRouter hangs its per-worker batch timer and trace span; it
  /// must invoke body() exactly once.
  template <typename ItemFn, typename ScopeFn>
  std::vector<WorkFailure> for_each(std::size_t count, ItemFn&& item,
                                    ScopeFn&& scope) {
    FailureLog failures;
    if (count == 0) return {};
    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(slots(), count));
    std::atomic<std::size_t> next{0};
    auto work = [&](unsigned t) {
      scope(t, [&] {
        Engine& engine = this->engine(t);
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= count) return;
          try {
            item(engine, t, i);
          } catch (...) {
            failures.record(i, std::current_exception());
          }
        }
      });
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) pool.emplace_back(work, t);
    for (auto& t : pool) t.join();
    return failures.take_sorted();
  }

  template <typename ItemFn>
  std::vector<WorkFailure> for_each(std::size_t count, ItemFn&& item) {
    return for_each(count, std::forward<ItemFn>(item),
                    [](unsigned, const auto& body) { body(); });
  }

 private:
  Factory factory_;
  std::vector<std::unique_ptr<Engine>> engines_;
};

}  // namespace brsmn::api
