// Bounded MPMC queue: the cluster's per-shard ingress channel.
//
// A shard that routes slower than its submitters produce must push the
// slowness *back* to the submitters, not buffer unboundedly — backpressure
// is what keeps an overloaded replica's queue depth a truthful health
// signal (api/cluster.hpp watches it) instead of a hidden memory leak.
// push() therefore blocks while the queue is full; close() releases every
// waiter so shutdown never deadlocks against a full or empty queue.
//
// Semantics:
//   push(item)  — blocks while full; moves from `item` and returns true,
//                 or returns false (item untouched) once closed.
//   try_push()  — non-blocking push; false when full or closed.
//   pop(out)    — blocks while empty; after close() keeps draining what
//                 remains and only then returns false. A closed queue
//                 loses producers, never queued items.
//   close()     — idempotent; wakes all blocked pushers and poppers.
//
// Plain mutex + two condition variables: the cluster's unit of work is a
// whole multicast route (microseconds of fabric work), so queue overhead
// is noise and the simple implementation is the TSan-provable one.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "common/contracts.hpp"

namespace brsmn::api {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    BRSMN_EXPECTS_MSG(capacity >= 1, "bounded queue capacity must be >= 1");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocking producer. Moves from `item` and returns true once space was
  /// available; returns false — `item` intact — when the queue is closed.
  bool push(T& item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking producer: false (item intact) when full or closed.
  bool try_push(T& item) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking consumer. Returns false only when the queue is closed *and*
  /// drained; every item pushed before close() is still handed out.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Stop admitting; wake everyone. Idempotent.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  std::size_t depth() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const noexcept { return capacity_; }

  bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace brsmn::api
