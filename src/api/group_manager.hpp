// Dynamic multicast group service with incremental plan patching.
//
// Long-lived multicast groups — a video channel's subscriber set, a
// collective's member list — evolve one endpoint at a time, while the
// underlying connection pattern persists across millions of routed
// cells. GroupManager is the registry for that shape: groups are keyed
// by caller-chosen ids, each holding an evolving MulticastAssignment
// mutated through join()/leave() and routed by id.
//
// The payoff is incremental recompilation. Routing a group whose
// assignment changed since its plan was compiled does not start over:
// route() looks up the plan compiled for the group's *previous*
// assignment in the shared api::PlanCache and hands it to
// planner::patch_route (core/route_plan.hpp), which recompiles only the
// levels whose entry tag planes the delta actually perturbed — a
// single-member join or leave on a group with fanout f typically
// dirties only the first ~log2(f) of the log2(n) levels — and adopts
// the rest verbatim. The patched plan is bit-identical to a cold
// compile of the new assignment (exhaustively verified by
// tests/test_group_manager.cpp) and is inserted into the cache under
// the new assignment, becoming the base for the next delta. A patch
// that would recompile more than max_dirty_fraction of the levels is
// abandoned in favor of a cold compile; a patch that trips the online
// self-check (a corrupt or stale base) invalidates exactly the base
// entry and falls back cold — detection never mis-delivers.
//
// Thread safety: the registry is sharded by group id, each shard behind
// its own mutex; join/leave/snapshot/route on different groups proceed
// concurrently, and route() copies the assignment out under the lock so
// routing itself never holds it. The plan cache is already sharded and
// thread-safe.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/brsmn.hpp"
#include "core/feedback.hpp"
#include "core/route_plan.hpp"

namespace brsmn::obs {
class Counter;
class Gauge;
class MetricRegistry;
}  // namespace brsmn::obs

namespace brsmn::api {

class PlanCache;

/// Caller-chosen multicast group identifier.
using GroupId = std::uint64_t;

struct GroupManagerConfig {
  /// Abandon a plan patch when more than this fraction of switch levels
  /// would recompile; the route cold-compiles instead. Patching every
  /// level still replays faster than the full configuration pipeline,
  /// but past this point the patch walk's plane comparisons stop paying
  /// for themselves.
  double max_dirty_fraction = 0.75;
  /// Registry shards; join/leave/route on groups in different shards
  /// never contend.
  std::size_t shards = 8;
};

/// A group's registry state, copied out under the shard lock.
struct GroupSnapshot {
  MulticastAssignment assignment;
  /// Monotonic mutation counter: bumped by every join/leave.
  std::uint64_t version = 0;
};

/// How route() obtained its result, for callers and tests.
enum class GroupRouteMode : std::uint8_t {
  /// No plan cache configured: routed cold, nothing compiled.
  Uncached,
  /// The cache already held a plan for the exact current assignment.
  Replayed,
  /// A base plan for the previous assignment was patched incrementally.
  Patched,
  /// Compiled cold (no base, patch abandoned, or patch detected a
  /// fault) and inserted.
  Compiled,
};

std::string_view group_route_mode_name(GroupRouteMode mode);

struct GroupRouteReport {
  RouteResult result;
  GroupRouteMode mode = GroupRouteMode::Uncached;
  /// Patch accounting (zero unless mode == Patched): switch levels
  /// adopted verbatim from the base plan vs recompiled.
  std::size_t levels_reused = 0;
  std::size_t levels_recompiled = 0;
  /// The registry version of the assignment that was routed.
  std::uint64_t version = 0;
};

class GroupManager {
 public:
  /// A manager for groups on an n x n network (n a power of two >= 2).
  explicit GroupManager(std::size_t n, GroupManagerConfig config = {});

  GroupManager(const GroupManager&) = delete;
  GroupManager& operator=(const GroupManager&) = delete;

  std::size_t network_size() const noexcept { return n_; }

  /// Add output `dst` to input `src`'s destination set in `group`,
  /// creating the group on first use. Throws if `dst` is already
  /// claimed inside the group (destination sets are pairwise disjoint).
  /// Returns the group's new version.
  std::uint64_t join(GroupId group, std::size_t src, std::size_t dst);

  /// Remove output `dst` from input `src`'s destination set. Throws if
  /// the group or the connection does not exist. Returns the group's
  /// new version.
  std::uint64_t leave(GroupId group, std::size_t src, std::size_t dst);

  /// Copy of the group's current assignment and version. Throws if the
  /// group does not exist.
  GroupSnapshot snapshot(GroupId group) const;

  bool contains(GroupId group) const;

  /// Drop the group from the registry (its cached plans age out of the
  /// plan cache by LRU). No-op when absent; returns whether it existed.
  bool erase(GroupId group);

  /// Live groups.
  std::size_t group_count() const;

  /// Route `group`'s current assignment on `net`. With
  /// options.plan_cache set (and no armed injector) the route is served
  /// replay-first / patch-second / cold-last as described above; the
  /// cache key is the assignment itself, so distinct groups sharing a
  /// pattern share plans. options.capture_levels must be off when a
  /// cache is used (mirroring route_via_cache). Throws if the group
  /// does not exist; fault::FaultDetected propagates exactly as from
  /// Brsmn::route with the same options.
  GroupRouteReport route(GroupId group, Brsmn& net,
                         const RouteOptions& options = {});
  GroupRouteReport route(GroupId group, FeedbackBrsmn& net,
                         const RouteOptions& options = {});

  /// Lifetime counters, mirrored into <prefix>.* / plan_patch.* metrics
  /// once attach_metrics is called.
  std::uint64_t joins() const noexcept;
  std::uint64_t leaves() const noexcept;
  std::uint64_t routes() const noexcept;
  std::uint64_t plans_patched() const noexcept;
  std::uint64_t plans_compiled() const noexcept;
  std::uint64_t plans_replayed() const noexcept;
  std::uint64_t patches_abandoned() const noexcept;
  std::uint64_t patches_faulted() const noexcept;

  /// Mirror the registry counters into `registry` from now on:
  /// <prefix>.{joins,leaves,routes} and <prefix>.live (gauge), plus the
  /// patch family plan_patch.{patched,compiled,replayed,abandoned,
  /// faulted,levels_reused,levels_recompiled}.
  void attach_metrics(obs::MetricRegistry& registry,
                      std::string_view prefix = "group");

 private:
  struct PlannedBase {
    /// The assignment the cache entry this group last produced was
    /// keyed by — the patch base for the next delta.
    std::optional<MulticastAssignment> assignment;
    std::uint64_t version = 0;
  };
  struct Group {
    MulticastAssignment assignment;
    std::uint64_t version = 0;
    /// Per implementation (fault::ImplKind), the last planned base.
    PlannedBase planned[2];
    explicit Group(std::size_t n) : assignment(n) {}
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<GroupId, Group> groups;
  };

  Shard& shard_for(GroupId group) {
    return shards_[static_cast<std::size_t>(group) % shards_.size()];
  }
  const Shard& shard_for(GroupId group) const {
    return shards_[static_cast<std::size_t>(group) % shards_.size()];
  }

  template <fault::ImplKind IMPL, typename Net>
  GroupRouteReport route_impl(GroupId group, Net& net,
                              const RouteOptions& options);

  /// Record that `group`'s cache entry for IMPL is now keyed by
  /// (assignment, version); stale (older-version) updates are ignored,
  /// so concurrent routes can finish out of order.
  void update_planned(GroupId group, std::size_t impl_index,
                      const MulticastAssignment& assignment,
                      std::uint64_t version);

  void bump(std::atomic<std::uint64_t>& raw, obs::Counter* counter,
            std::uint64_t by = 1);

  std::size_t n_;
  GroupManagerConfig config_;
  std::vector<Shard> shards_;

  std::atomic<std::uint64_t> joins_{0};
  std::atomic<std::uint64_t> leaves_{0};
  std::atomic<std::uint64_t> routes_{0};
  std::atomic<std::uint64_t> patched_{0};
  std::atomic<std::uint64_t> compiled_{0};
  std::atomic<std::uint64_t> replayed_{0};
  std::atomic<std::uint64_t> abandoned_{0};
  std::atomic<std::uint64_t> faulted_{0};
  std::atomic<std::uint64_t> levels_reused_{0};
  std::atomic<std::uint64_t> levels_recompiled_{0};
  obs::Counter* joins_counter_ = nullptr;
  obs::Counter* leaves_counter_ = nullptr;
  obs::Counter* routes_counter_ = nullptr;
  obs::Gauge* live_gauge_ = nullptr;
  obs::Counter* patched_counter_ = nullptr;
  obs::Counter* compiled_counter_ = nullptr;
  obs::Counter* replayed_counter_ = nullptr;
  obs::Counter* abandoned_counter_ = nullptr;
  obs::Counter* faulted_counter_ = nullptr;
  obs::Counter* levels_reused_counter_ = nullptr;
  obs::Counter* levels_recompiled_counter_ = nullptr;
};

}  // namespace brsmn::api
