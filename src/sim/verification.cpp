#include "sim/verification.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "core/tag_sequence.hpp"
#include "sim/trace.hpp"

namespace brsmn::sim {

namespace {

std::string describe(std::size_t level, std::size_t line,
                     const std::string& what) {
  std::ostringstream os;
  os << "level " << level << " line " << line << ": " << what;
  return os.str();
}

}  // namespace

VerificationReport verify_route(const MulticastAssignment& assignment,
                                const RouteResult& result) {
  VerificationReport report;
  const std::size_t n = assignment.size();

  // 1) Delivery matches the assignment exactly.
  if (result.delivered != expected_delivery(assignment)) {
    report.fail("delivered vector does not match the assignment");
  }

  // 2) Split accounting.
  const std::size_t want_splits =
      assignment.total_connections() - assignment.active_inputs();
  if (result.stats.broadcast_ops != want_splits) {
    report.fail("broadcast count != connections - active inputs");
  }
  std::size_t histogram_sum = 0;
  for (const std::size_t s : result.broadcasts_per_level) histogram_sum += s;
  if (histogram_sum != result.stats.broadcast_ops) {
    report.fail("per-level split histogram does not sum to the total");
  }

  // 3) Captured-level checks.
  if (!result.level_inputs.empty()) {
    if (!trace::copies_monotone(result)) {
      report.fail("per-source copy counts not monotone across levels");
    }
    for (std::size_t k = 0; k < result.level_inputs.size(); ++k) {
      const auto& lines = result.level_inputs[k];
      const std::size_t block_size = n >> k;
      std::map<std::size_t, std::set<std::size_t>> owed;  // source -> dests
      for (std::size_t line = 0; line < lines.size(); ++line) {
        const LineValue& lv = lines[line];
        if (!lv.packet) continue;
        const Packet& p = *lv.packet;
        if (p.stream.empty() ||
            collapse_eps(p.stream.front()) != collapse_eps(lv.tag)) {
          report.fail(describe(k + 1, line, "line tag != stream head"));
          continue;
        }
        std::vector<std::size_t> local;
        try {
          local = decode_sequence(p.stream);
        } catch (const ContractViolation&) {
          report.fail(describe(k + 1, line, "undecodable tag stream"));
          continue;
        }
        const std::size_t base = (line / block_size) * block_size;
        for (const std::size_t d : local) {
          if (!owed[p.source].insert(base + d).second) {
            report.fail(describe(k + 1, line, "duplicate owed destination"));
          }
        }
      }
      // The owed destinations at every level must be exactly I_source.
      for (std::size_t src = 0; src < n; ++src) {
        const auto& dests = assignment.destinations(src);
        const auto it = owed.find(src);
        const std::set<std::size_t> got =
            it == owed.end() ? std::set<std::size_t>{}
                             : it->second;
        if (!std::equal(got.begin(), got.end(), dests.begin(),
                        dests.end()) ||
            got.size() != dests.size()) {
          report.fail(describe(k + 1, src,
                               "owed destinations drifted from I_i"));
        }
      }
    }
  }
  return report;
}

}  // namespace brsmn::sim
