#include "sim/render.hpp"

#include <sstream>

#include "core/tag_sequence.hpp"

namespace brsmn::render {

char setting_char(SwitchSetting s) {
  switch (s) {
    case SwitchSetting::Parallel: return '=';
    case SwitchSetting::Cross: return 'x';
    case SwitchSetting::UpperBcast: return '^';
    case SwitchSetting::LowerBcast: return 'v';
  }
  return '?';
}

std::string levels(const RouteResult& result) {
  std::ostringstream os;
  for (std::size_t k = 0; k < result.level_inputs.size(); ++k) {
    os << "level " << (k + 1) << " |";
    for (std::size_t line = 0; line < result.level_inputs[k].size(); ++line) {
      const LineValue& lv = result.level_inputs[k][line];
      os << ' ' << line << ':';
      if (lv.packet) {
        os << '[' << tag_char(lv.tag) << " src=" << lv.packet->source << ' '
           << sequence_string(lv.packet->stream) << ']';
      } else {
        os << "(-)";
      }
    }
    os << '\n';
  }
  return os.str();
}

std::string delivery(const RouteResult& result) {
  std::ostringstream os;
  os << "outputs:";
  for (std::size_t out = 0; out < result.delivered.size(); ++out) {
    os << ' ' << out << "<-";
    if (result.delivered[out]) {
      os << *result.delivered[out];
    } else {
      os << '-';
    }
  }
  return os.str();
}

namespace {

char rule_char(RouteRule rule) {
  switch (rule) {
    case RouteRule::ScatterAddition: return 'A';
    case RouteRule::ScatterElimination: return 'E';
    case RouteRule::QuasisortMerge: return 'M';
    case RouteRule::FinalDelivery: return 'F';
  }
  return '?';
}

}  // namespace

std::string explanation(const RouteExplanation& ex) {
  std::ostringstream os;
  for (const PassExplanation& pass : ex.passes) {
    os << "level " << pass.level << ' ' << pass_name(pass.kind) << " (stages "
       << pass.stages() << ")\n";
    os << "  tags:    ";
    for (const Tag t : pass.input_tags) os << tag_char(t);
    os << '\n';
    if (!pass.divided_tags.empty()) {
      os << "  divided: ";
      for (const Tag t : pass.divided_tags) os << tag_char(t);
      os << '\n';
    }
    for (int stage = 1; stage <= pass.stages(); ++stage) {
      const auto& row = pass.decisions[static_cast<std::size_t>(stage - 1)];
      os << "  stage " << stage << ": ";
      for (const SwitchDecision& d : row) os << setting_char(d.setting);
      os << "  [";
      for (const SwitchDecision& d : row) os << rule_char(d.rule);
      os << "]\n";
    }
  }
  return os.str();
}

std::string explain_switch(const RouteExplanation& ex, int level,
                           PassKind kind, int stage,
                           std::size_t switch_index) {
  const SwitchDecision& d = ex.decision(level, kind, stage, switch_index);
  std::ostringstream os;
  os << "level " << level << ' ' << pass_name(kind) << " stage " << stage
     << " switch " << switch_index << ": " << setting_name(d.setting)
     << " -- " << rule_name(d.rule);
  return os.str();
}

std::string fabric_settings(const Rbn& rbn) {
  std::ostringstream os;
  for (int stage = 1; stage <= rbn.stages(); ++stage) {
    os << "stage " << stage << ": ";
    for (std::size_t sw = 0; sw < rbn.topology().switches_per_stage(); ++sw) {
      os << setting_char(rbn.setting(stage, sw));
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace brsmn::render
