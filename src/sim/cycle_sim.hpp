// Cycle-accurate datapath simulation of an RBN fabric.
//
// Rbn::propagate moves values through all stages at once; CycleSimulator
// instead inserts a pipeline register after every switch stage and
// advances one stage per clock, so a value injected at cycle t emerges
// at cycle t + stages — the "network depth" column of Table 2 measured
// rather than asserted. Multiple waves may be in flight simultaneously
// (one per stage), modelling the pipelined operation the paper assumes
// for back-to-back assignments.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "core/line_value.hpp"
#include "core/rbn.hpp"
#include "core/scatter.hpp"

namespace brsmn::obs {
class Tracer;
}  // namespace brsmn::obs

namespace brsmn::sim {

class CycleSimulator {
 public:
  /// Wraps a configured fabric. The fabric's settings are sampled when a
  /// wave enters a stage, so reconfiguring mid-flight affects only
  /// not-yet-traversed stages (as it would in hardware).
  explicit CycleSimulator(const Rbn& fabric);

  std::size_t size() const noexcept { return fabric_->size(); }
  int stages() const noexcept { return fabric_->stages(); }

  /// Inject a wave of line values at the inputs this cycle. Throws if a
  /// wave was already injected this cycle (call step() first).
  void inject(std::vector<LineValue> lines);

  /// Advance one clock: every in-flight wave moves through one stage.
  /// Completed waves are queued for collect(). Returns the number of
  /// waves still in flight.
  std::size_t step(ScatterExec& exec);

  /// Waves that have fully traversed the fabric, in completion order.
  std::optional<std::vector<LineValue>> collect();

  /// Cycles elapsed since construction.
  std::size_t now() const noexcept { return cycle_; }

  /// Waves currently inside the fabric.
  std::size_t in_flight() const noexcept { return waves_.size(); }

  /// Attach an event tracer: each step() emits a "sim.cycle" span and a
  /// sim.waves_in_flight counter sample. Pass nullptr to detach.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }

 private:
  struct Wave {
    int next_stage;  // 1-based stage the wave will traverse next
    std::vector<LineValue> lines;
  };

  const Rbn* fabric_;
  obs::Tracer* tracer_ = nullptr;
  std::vector<Wave> waves_;
  std::deque<std::vector<LineValue>> done_;
  bool injected_this_cycle_ = false;
  std::size_t cycle_ = 0;
};

}  // namespace brsmn::sim
