#include "sim/gate_model.hpp"

#include "common/bits.hpp"
#include "common/contracts.hpp"

namespace brsmn::model {

std::size_t rbn_switches(std::size_t n) {
  BRSMN_EXPECTS(is_pow2(n) && n >= 2);
  return (n / 2) * static_cast<std::size_t>(log2_exact(n));
}

std::size_t bsn_switches(std::size_t n) { return 2 * rbn_switches(n); }

std::size_t brsmn_switches(std::size_t n) {
  BRSMN_EXPECTS(is_pow2(n) && n >= 2);
  const int m = log2_exact(n);
  std::size_t count = 0;
  for (int k = 1; k <= m - 1; ++k) {
    const std::size_t bsn_size = n >> (k - 1);
    count += (std::size_t{1} << (k - 1)) * bsn_switches(bsn_size);
  }
  return count + n / 2;
}

std::size_t feedback_switches(std::size_t n) { return rbn_switches(n); }

std::uint64_t brsmn_gates(std::size_t n, const GateParams& p) {
  return static_cast<std::uint64_t>(brsmn_switches(n)) * p.gates_per_switch();
}

std::uint64_t feedback_gates(std::size_t n, const GateParams& p) {
  return static_cast<std::uint64_t>(feedback_switches(n)) *
         p.gates_per_switch();
}

std::size_t brsmn_depth_stages(std::size_t n) {
  BRSMN_EXPECTS(is_pow2(n) && n >= 2);
  const int m = log2_exact(n);
  std::size_t depth = 0;
  for (int k = 1; k <= m - 1; ++k) {
    depth += 2 * static_cast<std::size_t>(m - k + 1);
  }
  return depth + 1;
}

std::size_t feedback_depth_stages(std::size_t n) {
  BRSMN_EXPECTS(is_pow2(n) && n >= 2);
  const std::size_t m = static_cast<std::size_t>(log2_exact(n));
  // 2(m-1) full passes over m physical stages, plus the final 2x2 pass.
  return 2 * (m - 1) * m + 1;
}

std::uint64_t brsmn_routing_delay(std::size_t n) {
  BRSMN_EXPECTS(is_pow2(n) && n >= 2);
  const int m = log2_exact(n);
  std::uint64_t delay = 0;
  for (int k = 1; k <= m - 1; ++k) {
    delay += bsn_routing_delay(m - k + 1);
  }
  return delay + final_level_delay();
}

std::uint64_t feedback_routing_delay(std::size_t n) {
  BRSMN_EXPECTS(is_pow2(n) && n >= 2);
  const int m = log2_exact(n);
  std::uint64_t delay = 0;
  for (int k = 1; k <= m - 1; ++k) {
    const int top_stage = m - k + 1;
    delay += config_sweep_delay(top_stage) + datapath_delay(m);        // scatter
    delay += 2 * config_sweep_delay(top_stage) + datapath_delay(m);    // quasisort
  }
  return delay + final_level_delay();
}

}  // namespace brsmn::model
