#include "sim/cycle_sim.hpp"

#include "common/contracts.hpp"
#include "obs/tracer.hpp"

namespace brsmn::sim {

CycleSimulator::CycleSimulator(const Rbn& fabric) : fabric_(&fabric) {}

void CycleSimulator::inject(std::vector<LineValue> lines) {
  BRSMN_EXPECTS(lines.size() == size());
  BRSMN_EXPECTS_MSG(!injected_this_cycle_,
                    "one wave per cycle: call step() before injecting again");
  waves_.push_back(Wave{1, std::move(lines)});
  injected_this_cycle_ = true;
}

std::size_t CycleSimulator::step(ScatterExec& exec) {
  obs::TraceSpan cycle_span(tracer_, "sim.cycle");
  for (auto it = waves_.begin(); it != waves_.end();) {
    Wave& wave = *it;
    wave.lines = fabric_->propagate(
        std::move(wave.lines), wave.next_stage, wave.next_stage,
        [&exec](const SwitchContext& ctx, SwitchSetting s, LineValue a,
                LineValue b) {
          return apply_scatter_switch(ctx, s, std::move(a), std::move(b),
                                      exec);
        });
    ++wave.next_stage;
    if (wave.next_stage > stages()) {
      done_.push_back(std::move(wave.lines));
      it = waves_.erase(it);
    } else {
      ++it;
    }
  }
  ++cycle_;
  injected_this_cycle_ = false;
  if constexpr (obs::kEnabled) {
    if (tracer_ != nullptr) {
      tracer_->counter("sim.waves_in_flight",
                       static_cast<double>(waves_.size()));
    }
  }
  return waves_.size();
}

std::optional<std::vector<LineValue>> CycleSimulator::collect() {
  if (done_.empty()) return std::nullopt;
  std::vector<LineValue> lines = std::move(done_.front());
  done_.pop_front();
  return lines;
}

}  // namespace brsmn::sim
