// Fabric-configuration serialization.
//
// A routed assignment reduces to switch settings — 2 bits per switch. In
// a hardware deployment these are exactly the bits a controller would
// shift into the fabric; here they make configurations printable,
// diffable and replayable (route once, re-apply many times without
// re-running the routing algorithms).
#pragma once

#include <string>

#include "core/rbn.hpp"

namespace brsmn::sim {

/// Serialize all switch settings of a fabric: stages in order, one
/// character per switch ('=', 'x', '^', 'v' as in render::setting_char),
/// stages separated by '/'. Example for an 8-line fabric:
/// "=x^v/====/xx==".
std::string serialize_settings(const Rbn& rbn);

/// Re-apply a serialized configuration to a fabric of matching geometry.
/// Throws ContractViolation on shape or character errors.
void deserialize_settings(Rbn& rbn, const std::string& config);

}  // namespace brsmn::sim
