// Route tracing utilities: reconstruct per-source multicast trees from a
// captured RouteResult and check the structural guarantees the paper
// claims (edge-disjoint trees, monotone copy growth).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/brsmn.hpp"

namespace brsmn::trace {

/// For each captured level, which source occupies each line (nullopt for
/// empty lines). Requires RouteOptions::capture_levels at route time.
std::vector<std::vector<std::optional<std::size_t>>> occupancy_per_level(
    const RouteResult& result);

/// The lines occupied by copies of `source` at each captured level: the
/// level-granularity multicast tree of that input.
std::vector<std::vector<std::size_t>> multicast_tree(
    const RouteResult& result, std::size_t source);

/// True when, at every level, each line carries at most one source's copy
/// (edge-disjointness of the multicast trees at level granularity).
bool levels_disjoint(const RouteResult& result);

/// True when each source's copy count never decreases across levels and
/// finishes equal to its delivered-output count.
bool copies_monotone(const RouteResult& result);

}  // namespace brsmn::trace
