#include "sim/config_io.hpp"

#include <sstream>

#include "common/contracts.hpp"
#include "sim/render.hpp"

namespace brsmn::sim {

namespace {

SwitchSetting setting_from_config_char(char c) {
  switch (c) {
    case '=': return SwitchSetting::Parallel;
    case 'x': return SwitchSetting::Cross;
    case '^': return SwitchSetting::UpperBcast;
    case 'v': return SwitchSetting::LowerBcast;
    default: break;
  }
  BRSMN_EXPECTS_MSG(false, "invalid setting character");
  return SwitchSetting::Parallel;
}

}  // namespace

std::string serialize_settings(const Rbn& rbn) {
  std::ostringstream os;
  for (int stage = 1; stage <= rbn.stages(); ++stage) {
    if (stage > 1) os << '/';
    for (std::size_t sw = 0; sw < rbn.topology().switches_per_stage(); ++sw) {
      os << render::setting_char(rbn.setting(stage, sw));
    }
  }
  return os.str();
}

void deserialize_settings(Rbn& rbn, const std::string& config) {
  const std::size_t per_stage = rbn.topology().switches_per_stage();
  const std::size_t stages = static_cast<std::size_t>(rbn.stages());
  BRSMN_EXPECTS_MSG(config.size() == stages * per_stage + (stages - 1),
                    "configuration length does not match fabric geometry");
  std::size_t pos = 0;
  for (std::size_t stage = 1; stage <= stages; ++stage) {
    if (stage > 1) {
      BRSMN_EXPECTS_MSG(config[pos] == '/', "missing stage separator");
      ++pos;
    }
    for (std::size_t sw = 0; sw < per_stage; ++sw, ++pos) {
      rbn.set(static_cast<int>(stage), sw,
              setting_from_config_char(config[pos]));
    }
  }
}

}  // namespace brsmn::sim
