#include "sim/config_io.hpp"

#include <sstream>
#include <vector>

#include "common/contracts.hpp"
#include "sim/render.hpp"

namespace brsmn::sim {

namespace {

SwitchSetting setting_from_config_char(char c) {
  switch (c) {
    case '=': return SwitchSetting::Parallel;
    case 'x': return SwitchSetting::Cross;
    case '^': return SwitchSetting::UpperBcast;
    case 'v': return SwitchSetting::LowerBcast;
    default: break;
  }
  BRSMN_EXPECTS_MSG(false, "invalid setting character");
  return SwitchSetting::Parallel;
}

}  // namespace

std::string serialize_settings(const Rbn& rbn) {
  std::ostringstream os;
  for (int stage = 1; stage <= rbn.stages(); ++stage) {
    if (stage > 1) os << '/';
    for (std::size_t sw = 0; sw < rbn.topology().switches_per_stage(); ++sw) {
      os << render::setting_char(rbn.setting(stage, sw));
    }
  }
  return os.str();
}

void deserialize_settings(Rbn& rbn, const std::string& config) {
  const std::size_t per_stage = rbn.topology().switches_per_stage();
  const std::size_t stages = static_cast<std::size_t>(rbn.stages());
  BRSMN_EXPECTS_MSG(config.size() == stages * per_stage + (stages - 1),
                    "configuration length does not match fabric geometry");
  // Parse the whole string before touching the fabric: a malformed
  // config must throw without leaving the fabric half-written (found by
  // tests/fuzz_config_io.cpp, which asserts the strong guarantee).
  std::vector<SwitchSetting> parsed;
  parsed.reserve(stages * per_stage);
  std::size_t pos = 0;
  for (std::size_t stage = 1; stage <= stages; ++stage) {
    if (stage > 1) {
      BRSMN_EXPECTS_MSG(config[pos] == '/', "missing stage separator");
      ++pos;
    }
    for (std::size_t sw = 0; sw < per_stage; ++sw, ++pos) {
      parsed.push_back(setting_from_config_char(config[pos]));
    }
  }
  std::size_t next = 0;
  for (std::size_t stage = 1; stage <= stages; ++stage) {
    for (std::size_t sw = 0; sw < per_stage; ++sw) {
      rbn.set(static_cast<int>(stage), sw, parsed[next++]);
    }
  }
}

}  // namespace brsmn::sim
