// ASCII rendering of assignments, fabric settings and routing traces.
// Used by the examples to reproduce the paper's worked figures (Fig. 2:
// the 8x8 routing example; Fig. 9c: tag-sequence handling).
#pragma once

#include <string>

#include "core/brsmn.hpp"
#include "core/rbn.hpp"

namespace brsmn::render {

/// One line per captured level: line index, tag and packet source, e.g.
///   level 1 |  0:[0 src=0 00eaeee]  1:(eps)  ...
std::string levels(const RouteResult& result);

/// The delivered vector, e.g. "outputs: 0<-0 1<-0 2<-3 ...".
std::string delivery(const RouteResult& result);

/// Switch settings of a fabric, one stage per line ('=', 'x', '^', 'v').
std::string fabric_settings(const Rbn& rbn);

/// Compact character for a setting: '=' parallel, 'x' cross,
/// '^' upper broadcast, 'v' lower broadcast.
char setting_char(SwitchSetting s);

}  // namespace brsmn::render
