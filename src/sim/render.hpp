// ASCII rendering of assignments, fabric settings and routing traces.
// Used by the examples to reproduce the paper's worked figures (Fig. 2:
// the 8x8 routing example; Fig. 9c: tag-sequence handling).
#pragma once

#include <string>

#include "core/brsmn.hpp"
#include "core/rbn.hpp"

namespace brsmn::render {

/// One line per captured level: line index, tag and packet source, e.g.
///   level 1 |  0:[0 src=0 00eaeee]  1:(eps)  ...
std::string levels(const RouteResult& result);

/// The delivered vector, e.g. "outputs: 0<-0 1<-0 2<-3 ...".
std::string delivery(const RouteResult& result);

/// Switch settings of a fabric, one stage per line ('=', 'x', '^', 'v').
std::string fabric_settings(const Rbn& rbn);

/// Compact character for a setting: '=' parallel, 'x' cross,
/// '^' upper broadcast, 'v' lower broadcast.
char setting_char(SwitchSetting s);

/// A routing provenance grid (RouteOptions::explain), one pass per block:
/// the pass header with its input tags (and ε-divided tags for quasisort
/// passes), then one line per stage in fabric_settings style, with each
/// switch's setting char. Rule attribution is summarized per stage.
std::string explanation(const RouteExplanation& ex);

/// One switch's decision, e.g.
///   "level 2 quasisort stage 1 switch 3: cross -- quasisort bit-sort
///    merge (Theorem 1)".
std::string explain_switch(const RouteExplanation& ex, int level,
                           PassKind kind, int stage,
                           std::size_t switch_index);

}  // namespace brsmn::render
