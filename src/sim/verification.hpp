// Independent post-hoc verification of a routed assignment.
//
// The routing engines assert their own invariants as they go; this
// module re-checks a finished RouteResult from scratch against only the
// assignment and the paper's definitions, so deployments (and the test
// suite) can validate results without trusting the engine that produced
// them. It is the library's equivalent of the paper's "realizes every
// multicast assignment over edge-disjoint trees" claim, made executable.
#pragma once

#include <string>
#include <vector>

#include "core/brsmn.hpp"

namespace brsmn::sim {

struct VerificationReport {
  bool ok = true;
  std::vector<std::string> violations;

  void fail(std::string reason) {
    ok = false;
    violations.push_back(std::move(reason));
  }
};

/// Check a RouteResult against its assignment:
///  - delivery: output o receives input i's message iff o ∈ I_i;
///  - split accounting: total splits = connections − active inputs, and
///    the per-level histogram sums to the total;
///  - when levels were captured: per-level edge-disjointness (one source
///    per line), monotone copy growth, and stream consistency (each
///    packet's remaining stream decodes to exactly the destinations it
///    still owes, localized to its current block).
VerificationReport verify_route(const MulticastAssignment& assignment,
                                const RouteResult& result);

}  // namespace brsmn::sim
