// Hardware cost / depth / routing-time models (paper Sections 7.2-7.4).
//
// The paper measures three quantities, reported in Table 2:
//   cost          — number of logic gates,
//   depth         — gate depth of the datapath a bit traverses,
//   routing time  — gate delays from tags-at-inputs to all switches set.
//
// We charge per-switch constants calibrated to the paper's description: a
// 2x2 switch datapath is a handful of gates; the self-routing circuit adds
// a constant number of 1-bit pipelined adders and comparison logic
// (Fig. 12). Absolute constants are tunable via GateParams; Table 2 is
// about growth shape, which is invariant to them.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/stats.hpp"

namespace brsmn::model {

struct GateParams {
  /// Datapath gates per 2x2 switch (4 two-input muxes plus tag rewrite).
  std::size_t datapath_gates_per_switch = 12;
  /// Self-routing circuit gates per switch: a constant number of 1-bit
  /// adders, registers and comparators (Section 7.4).
  std::size_t routing_gates_per_switch = 28;

  std::size_t gates_per_switch() const {
    return datapath_gates_per_switch + routing_gates_per_switch;
  }
};

// --- switch counts -------------------------------------------------------

/// (n/2) log2 n switches in an n x n RBN.
std::size_t rbn_switches(std::size_t n);

/// A BSN is two cascaded RBNs.
std::size_t bsn_switches(std::size_t n);

/// Unrolled BRSMN: sum of all level BSNs plus the final 2x2 level.
std::size_t brsmn_switches(std::size_t n);

/// Feedback implementation: one physical RBN.
std::size_t feedback_switches(std::size_t n);

// --- gate cost (Table 2 "cost" column) -----------------------------------

std::uint64_t brsmn_gates(std::size_t n, const GateParams& p = {});
std::uint64_t feedback_gates(std::size_t n, const GateParams& p = {});

// --- depth (Table 2 "depth" column), in switch stages ---------------------

/// Stages traversed by a bit through the unrolled BRSMN:
/// sum_k 2 log(n/2^{k-1}) + 1 = O(log^2 n).
std::size_t brsmn_depth_stages(std::size_t n);

/// The feedback network time-multiplexes the same stage count (each pass
/// traverses all log n physical stages).
std::size_t feedback_depth_stages(std::size_t n);

// --- routing time (Table 2 "routing time" column), in gate delays ---------

/// Closed form of the delay the simulator accumulates in
/// RoutingStats::gate_delay for an unrolled BRSMN(n).
std::uint64_t brsmn_routing_delay(std::size_t n);

/// Same for the feedback implementation.
std::uint64_t feedback_routing_delay(std::size_t n);

}  // namespace brsmn::model
