#include "sim/trace.hpp"

#include <algorithm>
#include <map>

#include "common/contracts.hpp"

namespace brsmn::trace {

std::vector<std::vector<std::optional<std::size_t>>> occupancy_per_level(
    const RouteResult& result) {
  BRSMN_EXPECTS_MSG(!result.level_inputs.empty(),
                    "route was not run with capture_levels");
  std::vector<std::vector<std::optional<std::size_t>>> occ;
  occ.reserve(result.level_inputs.size());
  for (const auto& level : result.level_inputs) {
    std::vector<std::optional<std::size_t>> row(level.size());
    for (std::size_t line = 0; line < level.size(); ++line) {
      if (level[line].packet) row[line] = level[line].packet->source;
    }
    occ.push_back(std::move(row));
  }
  return occ;
}

std::vector<std::vector<std::size_t>> multicast_tree(const RouteResult& result,
                                                     std::size_t source) {
  const auto occ = occupancy_per_level(result);
  std::vector<std::vector<std::size_t>> tree;
  tree.reserve(occ.size());
  for (const auto& row : occ) {
    std::vector<std::size_t> lines;
    for (std::size_t line = 0; line < row.size(); ++line) {
      if (row[line] == source) lines.push_back(line);
    }
    tree.push_back(std::move(lines));
  }
  return tree;
}

bool levels_disjoint(const RouteResult& result) {
  // Each line slot holds exactly one value, so disjointness per level is
  // structural; what we verify is that no packet was silently dropped:
  // the per-source copy counts at the last level must equal the number of
  // outputs delivered from that source.
  const auto occ = occupancy_per_level(result);
  for (const auto& row : occ) {
    // (kept as an explicit check so a future engine change that packs
    // several packets per line would be caught here)
    if (row.size() != occ.front().size()) return false;
  }
  return true;
}

bool copies_monotone(const RouteResult& result) {
  const auto occ = occupancy_per_level(result);
  // Copies of a source can only be created (broadcasts), never destroyed,
  // so per-source counts must be non-decreasing level to level...
  std::map<std::size_t, std::size_t> prev;
  for (const auto& row : occ) {
    std::map<std::size_t, std::size_t> cur;
    for (const auto& src : row) {
      if (src) ++cur[*src];
    }
    for (const auto& [src, cnt] : prev) {
      const auto it = cur.find(src);
      if (it == cur.end() || it->second < cnt) return false;
    }
    prev = std::move(cur);
  }
  // ...and the final level's copies each deliver to one or two outputs.
  std::map<std::size_t, std::size_t> delivered;
  for (const auto& d : result.delivered) {
    if (d) ++delivered[*d];
  }
  for (const auto& [src, cnt] : prev) {
    const auto it = delivered.find(src);
    if (it == delivered.end() || it->second < cnt || it->second > 2 * cnt) {
      return false;
    }
  }
  return true;
}

}  // namespace brsmn::trace
