#include "topology/merging_network.hpp"

namespace brsmn::topo {

SwitchPort input_port(std::size_t line, std::size_t n) {
  BRSMN_EXPECTS(is_pow2(n) && n >= 2 && line < n);
  // The paper's shuffle wiring satisfies |shuffle(a) - shuffle(ā)| = n/2,
  // which pins the reverse-banyan orientation: switch port a is wired to
  // external line unshuffle(a) (cyclic right shift), so line -> port is
  // the cyclic left shift.
  const std::size_t a = shuffle_map(n)[line];
  return SwitchPort{a / 2, a % 2};
}

std::size_t output_line(SwitchPort sp, std::size_t n) {
  BRSMN_EXPECTS(is_pow2(n) && n >= 2);
  BRSMN_EXPECTS(sp.switch_index < n / 2 && sp.port < 2);
  const std::size_t a = sp.switch_index * 2 + sp.port;
  return unshuffle_map(n)[a];
}

std::size_t logical_switch(std::size_t line, std::size_t n) {
  BRSMN_EXPECTS(is_pow2(n) && n >= 2 && line < n);
  return line % (n / 2);
}

std::size_t physical_switch_of_logical(std::size_t j, std::size_t n) {
  BRSMN_EXPECTS(is_pow2(n) && n >= 2 && j < n / 2);
  // Line j (the upper member of the pair) enters switch floor(shuffle(j)/2)
  // = j: in this orientation the physical and logical indices coincide.
  return input_port(j, n).switch_index;
}

}  // namespace brsmn::topo
