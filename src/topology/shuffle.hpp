// Perfect shuffle / exchange interconnection functions (paper Section 4,
// following Hwang [15]).
//
// On m-bit addresses a = a_{m-1} ... a_1 a_0 (a_{m-1} the MSB here, i.e. the
// usual machine-integer orientation):
//   shuffle(a)   = a_{m-2} ... a_0 a_{m-1}   (cyclic left shift)
//   unshuffle(a) = a_0 a_{m-1} ... a_1       (cyclic right shift)
//   exchange(a)  = a_{m-1} ... a_1 (1-a_0)   (flip the LSB)
#pragma once

#include <cstddef>
#include <span>

#include "common/bits.hpp"

namespace brsmn::topo {

/// Cyclic left shift of the log2(n)-bit address `a`, 0 <= a < n.
constexpr std::size_t shuffle(std::size_t a, std::size_t n) {
  BRSMN_EXPECTS(is_pow2(n) && a < n);
  if (n == 1) return a;
  const std::size_t top = a >> (log2_exact(n) - 1);
  return ((a << 1) & (n - 1)) | top;
}

/// Cyclic right shift; inverse of shuffle.
constexpr std::size_t unshuffle(std::size_t a, std::size_t n) {
  BRSMN_EXPECTS(is_pow2(n) && a < n);
  if (n == 1) return a;
  const std::size_t low = a & 1;
  return (a >> 1) | (low << (log2_exact(n) - 1));
}

/// Flip the least significant bit: the other port of the same 2x2 switch.
constexpr std::size_t exchange(std::size_t a) { return a ^ 1u; }

/// The full shuffle permutation of width n as a table: map[a] =
/// shuffle(a, n). Built lazily once per n and cached for the process
/// lifetime (thread-safe); the returned span stays valid forever. The
/// per-line wiring functions walk this table instead of re-deriving the
/// cyclic shifts line by line.
std::span<const std::size_t> shuffle_map(std::size_t n);

/// map[a] = unshuffle(a, n), cached like shuffle_map.
std::span<const std::size_t> unshuffle_map(std::size_t n);

}  // namespace brsmn::topo
