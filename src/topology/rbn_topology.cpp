#include "topology/rbn_topology.hpp"

namespace brsmn::topo {

RbnTopology::RbnTopology(std::size_t n) : n_(n), m_(log2_exact(n)) {
  BRSMN_EXPECTS(n >= 2);
}

std::size_t RbnTopology::block_size(int stage) const {
  BRSMN_EXPECTS(stage >= 1 && stage <= m_);
  return std::size_t{1} << stage;
}

std::size_t RbnTopology::blocks_in_stage(int stage) const {
  return n_ / block_size(stage);
}

std::size_t RbnTopology::block_of(int stage, std::size_t line) const {
  BRSMN_EXPECTS(line < n_);
  return line / block_size(stage);
}

std::size_t RbnTopology::block_base(int stage, std::size_t block) const {
  BRSMN_EXPECTS(block < blocks_in_stage(stage));
  return block * block_size(stage);
}

std::size_t RbnTopology::partner(int stage, std::size_t line) const {
  BRSMN_EXPECTS(line < n_);
  const std::size_t half = block_size(stage) / 2;
  const std::size_t base = block_base(stage, block_of(stage, line));
  const std::size_t offset = line - base;
  return offset < half ? line + half : line - half;
}

bool RbnTopology::is_upper(int stage, std::size_t line) const {
  BRSMN_EXPECTS(line < n_);
  const std::size_t half = block_size(stage) / 2;
  const std::size_t base = block_base(stage, block_of(stage, line));
  return (line - base) < half;
}

std::size_t RbnTopology::stage_switch(int stage, std::size_t line) const {
  BRSMN_EXPECTS(line < n_);
  const std::size_t half = block_size(stage) / 2;
  const std::size_t block = block_of(stage, line);
  const std::size_t base = block_base(stage, block);
  const std::size_t offset = (line - base) % half;
  return block * half + offset;
}

}  // namespace brsmn::topo
