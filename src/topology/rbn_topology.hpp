// Static structure of an n x n reverse banyan network (paper Fig. 5).
//
// RBN(n) = [RBN(n/2) over lines 0..n/2-1  ||  RBN(n/2) over lines n/2..n-1]
//          followed by an n x n merging network.
//
// Unrolled, RBN(n) has m = log2(n) stages. Stage j (1-based) consists of
// n/2^j independent merging networks ("blocks") of size 2^j; block b covers
// the contiguous line range [b*2^j, (b+1)*2^j). Every stage contains exactly
// n/2 switches, for a total of (n/2)*log2(n).
//
// The recursive decomposition also induces the complete binary tree of
// sub-RBNs used by the distributed routing algorithms (paper Fig. 8): node
// (j, b) is the sub-RBN of size 2^j over block b's lines, with children
// (j-1, 2b) and (j-1, 2b+1) and, at j = 0, the individual input lines.
#pragma once

#include <cstddef>

#include "common/bits.hpp"

namespace brsmn::topo {

/// Immutable description of the stage/block geometry of an RBN(n).
class RbnTopology {
 public:
  /// Precondition: n is a power of two, n >= 2.
  explicit RbnTopology(std::size_t n);

  std::size_t size() const noexcept { return n_; }

  /// Number of stages m = log2(n).
  int stages() const noexcept { return m_; }

  /// Switches per stage (= n/2).
  std::size_t switches_per_stage() const noexcept { return n_ / 2; }

  /// Total 2x2 switches in the network: (n/2) * log2(n).
  std::size_t switch_count() const noexcept {
    return switches_per_stage() * static_cast<std::size_t>(m_);
  }

  /// Size of each merging-network block in stage j (1-based): 2^j lines.
  std::size_t block_size(int stage) const;

  /// Number of blocks in stage j: n / 2^j.
  std::size_t blocks_in_stage(int stage) const;

  /// Block index containing `line` at stage j.
  std::size_t block_of(int stage, std::size_t line) const;

  /// First line of block b at stage j.
  std::size_t block_base(int stage, std::size_t block) const;

  /// The line paired with `line` by its stage-j merging network:
  /// line and partner differ by block_size/2 within their block.
  std::size_t partner(int stage, std::size_t line) const;

  /// True if `line` enters the upper port of its logical stage-j switch.
  bool is_upper(int stage, std::size_t line) const;

  /// Logical switch index within the whole stage (block-major): block
  /// base/2 + offset. Lines `line` and `partner(stage,line)` share it.
  std::size_t stage_switch(int stage, std::size_t line) const;

 private:
  std::size_t n_;
  int m_;
};

}  // namespace brsmn::topo
