// Physical wiring of an n x n merging network (paper Fig. 5/6).
//
// A merging network is a single stage of n/2 2x2 switches whose input and
// output links both follow the (reverse-banyan orientation of the) perfect
// shuffle interconnection: switch port a is wired to external line
// unshuffle(a) on both sides. This orientation is pinned by the paper's
// property |line(a) - line(exchange(a))| = n/2 (Section 4).
//
// The consequence used throughout the paper is that external lines j and
// j + n/2 (j < n/2) meet at one switch on both sides, so the whole stage
// behaves as n/2 independent "logical" switches over line pairs
// (j, j + n/2). This module exposes both views and the mapping between
// them; tests/test_topology.cpp proves they coincide.
#pragma once

#include <cstddef>

#include "topology/shuffle.hpp"

namespace brsmn::topo {

/// Identifies one port of one physical switch inside a merging network.
struct SwitchPort {
  std::size_t switch_index;  ///< physical switch, in [0, n/2)
  std::size_t port;          ///< 0 = upper port, 1 = lower port

  friend bool operator==(const SwitchPort&, const SwitchPort&) = default;
};

/// The physical switch port that external input line `line` of an n x n
/// merging network is wired to.
SwitchPort input_port(std::size_t line, std::size_t n);

/// The external output line wired to physical switch `sw`, port `port`.
std::size_t output_line(SwitchPort sp, std::size_t n);

/// Logical switch index for an external line: logical switch j joins lines
/// (j, j + n/2); both lines map to the same value j in [0, n/2).
std::size_t logical_switch(std::size_t line, std::size_t n);

/// Physical switch index realizing logical switch `j` of an n x n merging
/// network (the switch where lines j and j + n/2 meet).
std::size_t physical_switch_of_logical(std::size_t j, std::size_t n);

}  // namespace brsmn::topo
