// shuffle.hpp is header-only; this TU exists to give the functions a home
// for explicit compile checking of the constexpr definitions.
#include "topology/shuffle.hpp"

namespace brsmn::topo {

static_assert(shuffle(0b001, 8) == 0b010);
static_assert(shuffle(0b100, 8) == 0b001);
static_assert(unshuffle(shuffle(5, 8), 8) == 5);
static_assert(exchange(6) == 7);

}  // namespace brsmn::topo
