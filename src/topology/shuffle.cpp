#include "topology/shuffle.hpp"

#include <vector>

#include "common/table_registry.hpp"

namespace brsmn::topo {

static_assert(shuffle(0b001, 8) == 0b010);
static_assert(shuffle(0b100, 8) == 0b001);
static_assert(unshuffle(shuffle(5, 8), 8) == 5);
static_assert(exchange(6) == 7);

namespace {

/// Permutation-table builders for the shared registry
/// (common/table_registry.hpp): one table kind per permutation, built at
/// most once per process and never freed, so the spans handed out stay
/// valid for the process lifetime and every engine reads the same table.
template <std::size_t (*Perm)(std::size_t, std::size_t)>
struct PermBuilder {
  void operator()(std::size_t n, std::vector<std::size_t>& table) const {
    table.resize(n);
    for (std::size_t a = 0; a < n; ++a) table[a] = Perm(a, n);
  }
};

}  // namespace

std::span<const std::size_t> shuffle_map(std::size_t n) {
  return common::pow2_table<std::size_t, PermBuilder<&shuffle>>(n);
}

std::span<const std::size_t> unshuffle_map(std::size_t n) {
  return common::pow2_table<std::size_t, PermBuilder<&unshuffle>>(n);
}

}  // namespace brsmn::topo
