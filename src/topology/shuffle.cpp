#include "topology/shuffle.hpp"

#include <array>
#include <mutex>
#include <vector>

namespace brsmn::topo {

static_assert(shuffle(0b001, 8) == 0b010);
static_assert(shuffle(0b100, 8) == 0b001);
static_assert(unshuffle(shuffle(5, 8), 8) == 5);
static_assert(exchange(6) == 7);

namespace {

/// One lazily-built permutation table per power-of-two width, built at
/// most once per process (std::call_once) and never freed, so the spans
/// handed out stay valid for the process lifetime.
template <std::size_t (*Perm)(std::size_t, std::size_t)>
std::span<const std::size_t> cached_map(std::size_t n) {
  BRSMN_EXPECTS(is_pow2(n));
  static std::array<std::once_flag, 64> built;
  static std::array<std::vector<std::size_t>, 64> tables;
  const auto k = static_cast<std::size_t>(log2_exact(n));
  std::call_once(built[k], [n, k] {
    std::vector<std::size_t>& table = tables[k];
    table.resize(n);
    for (std::size_t a = 0; a < n; ++a) table[a] = Perm(a, n);
  });
  return tables[k];
}

}  // namespace

std::span<const std::size_t> shuffle_map(std::size_t n) {
  return cached_map<&shuffle>(n);
}

std::span<const std::size_t> unshuffle_map(std::size_t n) {
  return cached_map<&unshuffle>(n);
}

}  // namespace brsmn::topo
