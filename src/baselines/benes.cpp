#include "baselines/benes.hpp"

#include "common/bits.hpp"
#include "common/contracts.hpp"

namespace brsmn::baselines {

namespace {

struct Node {
  std::size_t source = 0;
  std::size_t dest = 0;  ///< top-level destination, immutable
};

/// Recursive looping router. `items` sit on the 2^k input lines of a
/// sub-network whose local destination key is dest >> shift (distinct
/// across items). Returns the items arranged so that position p holds the
/// item with local key p.
std::vector<Node> route_rec(std::vector<Node> items, int shift,
                            RoutingStats* stats) {
  const std::size_t n = items.size();
  auto key = [shift](const Node& m) { return m.dest >> shift; };
  if (n == 2) {
    if (stats) ++stats->switch_traversals;
    std::vector<Node> out(2);
    out[key(items[0]) & 1] = items[0];
    out[key(items[1]) & 1] = items[1];
    return out;
  }

  // Looping 2-coloring: lines sharing an input switch (x, x^1) must take
  // different sub-networks, and so must the two lines whose keys share an
  // output switch (key/2 equal). Cycles alternate the two constraint
  // kinds; walking each cycle once colors everything consistently.
  std::vector<std::size_t> line_of_key(n);
  for (std::size_t line = 0; line < n; ++line) {
    line_of_key[key(items[line])] = line;
  }
  auto output_partner = [&](std::size_t line) {
    return line_of_key[key(items[line]) ^ 1];
  };

  std::vector<int> color(n, -1);
  for (std::size_t start = 0; start < n; ++start) {
    if (color[start] != -1) continue;
    std::size_t v = start;
    color[v] = 0;
    if (stats) ++stats->tree_bwd_ops;
    for (;;) {
      const std::size_t u = v ^ 1;  // input-switch partner
      if (color[u] != -1) break;
      color[u] = 1 - color[v];
      if (stats) ++stats->tree_bwd_ops;
      const std::size_t w = output_partner(u);
      if (color[w] != -1) break;
      color[w] = 1 - color[u];
      if (stats) ++stats->tree_bwd_ops;
      v = w;
    }
  }

  // First stage: input switch k forwards its color-0 line to upper
  // sub-network position k, its color-1 line to lower position k.
  std::vector<Node> upper(n / 2), lower(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const Node& a = items[2 * k];
    const Node& b = items[2 * k + 1];
    BRSMN_ENSURES_MSG(color[2 * k] != color[2 * k + 1],
                      "looping produced an inconsistent coloring");
    (color[2 * k] == 0 ? upper : lower)[k] = a;
    (color[2 * k] == 0 ? lower : upper)[k] = b;
    if (stats) ++stats->switch_traversals;
  }

  const std::vector<Node> up_out = route_rec(std::move(upper), shift + 1,
                                             stats);
  const std::vector<Node> low_out = route_rec(std::move(lower), shift + 1,
                                              stats);

  // Last stage: output switch j receives upper output j and lower output
  // j, both with local key/2 == j, and splits them by the key's low bit.
  std::vector<Node> out(n);
  for (std::size_t j = 0; j < n / 2; ++j) {
    const Node& a = up_out[j];
    const Node& b = low_out[j];
    BRSMN_ENSURES((key(a) >> 1) == j && (key(b) >> 1) == j);
    BRSMN_ENSURES_MSG((key(a) & 1) != (key(b) & 1),
                      "two items claim one Benes output");
    out[2 * j + (key(a) & 1)] = a;
    out[2 * j + (key(b) & 1)] = b;
    if (stats) ++stats->switch_traversals;
  }
  return out;
}

}  // namespace

BenesNetwork::BenesNetwork(std::size_t n) : n_(n) {
  BRSMN_EXPECTS(is_pow2(n) && n >= 2);
}

int BenesNetwork::depth() const noexcept {
  return 2 * log2_exact(n_) - 1;
}

std::size_t BenesNetwork::switch_count() const noexcept {
  return (n_ / 2) * static_cast<std::size_t>(depth());
}

std::vector<std::size_t> BenesNetwork::route(
    const std::vector<std::size_t>& dest, RoutingStats* stats) const {
  BRSMN_EXPECTS(dest.size() == n_);
  {
    std::vector<bool> used(n_, false);
    for (const std::size_t d : dest) {
      BRSMN_EXPECTS_MSG(d < n_ && !used[d],
                        "Benes routing requires a full permutation");
      used[d] = true;
    }
  }
  std::vector<Node> items(n_);
  for (std::size_t i = 0; i < n_; ++i) items[i] = {i, dest[i]};
  const std::vector<Node> out = route_rec(std::move(items), 0, stats);
  std::vector<std::size_t> per_output(n_);
  for (std::size_t d = 0; d < n_; ++d) {
    BRSMN_ENSURES(out[d].dest == d);
    per_output[d] = out[d].source;
  }
  return per_output;
}

}  // namespace brsmn::baselines
