// Analytic complexity models for the prior multicast networks of Table 2.
//
// Nassimi & Sahni [4] and Lee & Oruç [9] were never released as
// implementations; the paper compares against their published complexity
// orders. We model each row of Table 2 as a closed-form gate count /
// depth / routing-time function with unit constants, so the benchmark
// harness can plot all four rows on the same axes (shape comparison, the
// same information Table 2 conveys).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace brsmn::baselines {

struct ComplexityRow {
  std::string network;
  std::uint64_t cost = 0;          ///< gates (unit constant)
  std::uint64_t depth = 0;         ///< gate depth
  std::uint64_t routing_time = 0;  ///< gate delays
};

/// Nassimi-Sahni generalized connection network at k = log n:
/// cost n log^2 n, depth log^2 n, routing time log^3 n.
ComplexityRow nassimi_sahni(std::size_t n);

/// Lee-Oruç generalized connector: cost n log^2 n, depth log^2 n,
/// routing time log^3 n.
ComplexityRow lee_oruc(std::size_t n);

/// This paper's design: cost n log^2 n, depth log^2 n, routing log^2 n.
/// Computed from the implemented model (sim/gate_model) rather than the
/// asymptotic formula, so benches can compare measured vs analytic.
ComplexityRow brsmn_row(std::size_t n);

/// Feedback version: cost n log n, same depth/routing orders.
ComplexityRow feedback_row(std::size_t n);

/// All four rows of Table 2 for one n, in the paper's order.
std::vector<ComplexityRow> table2(std::size_t n);

}  // namespace brsmn::baselines
