// Beneš rearrangeable permutation network with the classic looping
// route-assignment algorithm.
//
// This is the canonical *centrally routed* counterpart to the paper's
// self-routing designs: hardware cost O(n log n) (2 log n - 1 stages of
// n/2 switches — cheaper than any self-routing design known then), but
// switch settings must be computed by a sequential looping algorithm
// touching Θ(n log n) state per assignment. The benchmark harness uses
// it to quantify the setup-time gap that motivates self-routing
// (Section 1 of the paper).
#pragma once

#include <cstddef>
#include <vector>

#include "core/stats.hpp"

namespace brsmn::baselines {

class BenesNetwork {
 public:
  explicit BenesNetwork(std::size_t n);

  std::size_t size() const noexcept { return n_; }

  /// 2 log2(n) - 1 switch stages.
  int depth() const noexcept;

  /// (n/2)(2 log2(n) - 1) switches.
  std::size_t switch_count() const noexcept;

  /// Route the full permutation `dest` (dest[i] = output of input i).
  /// Returns per-output sources. `stats`, when given, counts the looping
  /// algorithm's sequential steps in tree_bwd_ops (the centralized setup
  /// work) and value movements in switch_traversals.
  std::vector<std::size_t> route(const std::vector<std::size_t>& dest,
                                 RoutingStats* stats = nullptr) const;

 private:
  std::size_t n_;
};

}  // namespace brsmn::baselines
