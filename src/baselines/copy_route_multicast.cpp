#include "baselines/copy_route_multicast.hpp"

#include "common/contracts.hpp"

namespace brsmn::baselines {

CopyRouteMulticast::CopyRouteMulticast(std::size_t n)
    : copy_(n), benes_(n) {}

std::vector<std::optional<std::size_t>> CopyRouteMulticast::route(
    const MulticastAssignment& assignment, RoutingStats* stats) const {
  const std::size_t n = size();
  BRSMN_EXPECTS(assignment.size() == n);

  // Stage 1: make |I_i| copies of each input's packet.
  std::vector<std::size_t> copies(n);
  for (std::size_t i = 0; i < n; ++i) {
    copies[i] = assignment.destinations(i).size();
  }
  const auto copied = copy_.route(copies, stats);

  // Stage 2: each copy line takes one destination of its source (copies
  // of a source are contiguous, so consume the source's sorted
  // destination list in order); idle lines absorb the unused outputs so
  // the Beneš stage sees a full permutation.
  std::vector<std::size_t> cursor(n, 0);
  std::vector<std::size_t> dest(n, n);  // n = unassigned marker
  std::vector<bool> output_used(n, false);
  for (std::size_t line = 0; line < n; ++line) {
    if (!copied[line]) continue;
    const std::size_t src = *copied[line];
    const auto& dests = assignment.destinations(src);
    BRSMN_ENSURES(cursor[src] < dests.size());
    dest[line] = dests[cursor[src]++];
    output_used[dest[line]] = true;
  }
  std::size_t spare = 0;
  for (std::size_t line = 0; line < n; ++line) {
    if (dest[line] != n) continue;
    while (output_used[spare]) ++spare;
    dest[line] = spare;
    output_used[spare] = true;
  }

  // Stage 3: Beneš delivers every copy to its output.
  const std::vector<std::size_t> per_output = benes_.route(dest, stats);

  // Translate copy lines back to original sources; idle filler lines
  // deliver nothing.
  std::vector<std::optional<std::size_t>> delivered(n);
  for (std::size_t out = 0; out < n; ++out) {
    const std::size_t line = per_output[out];
    if (copied[line]) delivered[out] = *copied[line];
  }
  return delivered;
}

}  // namespace brsmn::baselines
