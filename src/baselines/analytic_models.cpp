#include "baselines/analytic_models.hpp"

#include "common/bits.hpp"
#include "common/contracts.hpp"
#include "sim/gate_model.hpp"

namespace brsmn::baselines {

namespace {

std::uint64_t ulog(std::size_t n) {
  return static_cast<std::uint64_t>(log2_exact(n));
}

}  // namespace

ComplexityRow nassimi_sahni(std::size_t n) {
  BRSMN_EXPECTS(is_pow2(n) && n >= 2);
  const std::uint64_t lg = ulog(n);
  // k = log n: O(k n^{1+1/k} log n) switches -> ~ 2 n log^2 n gate units;
  // routing on the embedded parallel computer costs O(k log^2 n) = log^3 n.
  return {"Nassimi-Sahni", 2 * n * lg * lg, lg * lg, lg * lg * lg};
}

ComplexityRow lee_oruc(std::size_t n) {
  BRSMN_EXPECTS(is_pow2(n) && n >= 2);
  const std::uint64_t lg = ulog(n);
  return {"Lee-Oruc", 2 * n * lg * lg, lg * lg, lg * lg * lg};
}

ComplexityRow brsmn_row(std::size_t n) {
  return {"BRSMN (this paper)", model::brsmn_gates(n),
          static_cast<std::uint64_t>(model::brsmn_depth_stages(n)) *
              kSwitchStageDelay,
          model::brsmn_routing_delay(n)};
}

ComplexityRow feedback_row(std::size_t n) {
  return {"BRSMN feedback", model::feedback_gates(n),
          static_cast<std::uint64_t>(model::feedback_depth_stages(n)) *
              kSwitchStageDelay,
          model::feedback_routing_delay(n)};
}

std::vector<ComplexityRow> table2(std::size_t n) {
  return {nassimi_sahni(n), lee_oruc(n), brsmn_row(n), feedback_row(n)};
}

}  // namespace brsmn::baselines
