#include "baselines/crossbar_multicast.hpp"

#include "common/bits.hpp"
#include "common/contracts.hpp"

namespace brsmn::baselines {

CrossbarMulticast::CrossbarMulticast(std::size_t n) : n_(n) {
  BRSMN_EXPECTS(is_pow2(n) && n >= 2);
}

std::vector<std::optional<std::size_t>> CrossbarMulticast::route(
    const MulticastAssignment& assignment) const {
  BRSMN_EXPECTS(assignment.size() == n_);
  std::vector<std::optional<std::size_t>> delivered(n_);
  const auto inv = assignment.output_to_input();
  for (std::size_t out = 0; out < n_; ++out) {
    if (inv[out] != MulticastAssignment::kUnassigned) delivered[out] = inv[out];
  }
  return delivered;
}

}  // namespace brsmn::baselines
