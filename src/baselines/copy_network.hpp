// A nonblocking copy network in the style of T.T. Lee [6] (reference [6]
// of the paper): given per-input copy counts with total <= n, produce the
// requested number of packet copies on distinct output lines.
//
// Pipeline:
//   1. concentration — active packets are compacted to the top lines by a
//      reverse-banyan bit sort (keys: idle = 1);
//   2. running-sum interval assignment — concentrated packet q claims the
//      contiguous output interval [S_q, S_q + c_q) (Lee's running adder +
//      dummy address encoders);
//   3. broadcast-banyan interval routing — log n stages; the stage-k
//      switch joining lines (i, i + n'/2) of its sub-network sends a
//      packet up/down by comparing its interval to the half boundary,
//      splitting boundary-spanning intervals into both halves.
// Concentration + monotone intervals make step 3 conflict-free; the
// implementation asserts that no switch output is ever claimed twice.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/stats.hpp"

namespace brsmn::baselines {

class CopyNetwork {
 public:
  explicit CopyNetwork(std::size_t n);

  std::size_t size() const noexcept { return n_; }

  /// Concentrator (an RBN) + broadcast banyan: (n/2) log n switches each.
  std::size_t switch_count() const noexcept;

  /// Produce `copies[i]` copies of input i's packet. Returns, for each
  /// output line, the source input whose copy landed there (nullopt for
  /// idle lines). Copies occupy the first sum(copies) lines, grouped by
  /// (concentration-order) source.
  /// Precondition: sum(copies) <= n.
  std::vector<std::optional<std::size_t>> route(
      const std::vector<std::size_t>& copies,
      RoutingStats* stats = nullptr) const;

 private:
  std::size_t n_;
};

}  // namespace brsmn::baselines
