// Cheng-Chen style self-routing permutation network (paper reference
// [14]): the RBN bit-sorting machinery applied log n times, one pass per
// destination-address bit, sorts any (full) permutation to its targets.
//
// This is both a functional baseline (the permutation special case of
// multicast) and the component the paper builds on: our scatter and
// quasisorting networks reuse exactly this fabric. Here we implement the
// permutation router as log n cascaded RBN bit sorts on successive
// destination bits — a radix sort from the most significant bit down,
// sorting within each already-sorted block.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/rbn.hpp"
#include "core/stats.hpp"

namespace brsmn::baselines {

class ChengChenPermutation {
 public:
  explicit ChengChenPermutation(std::size_t n);

  std::size_t size() const noexcept { return n_; }

  /// Number of RBN fabrics cascaded: log2(n).
  int passes() const noexcept;

  /// Total 2x2 switches: log n fabrics of (n/2) log n switches.
  std::size_t switch_count() const;

  /// Route a full permutation: dest[i] is the output for input i, every
  /// output used exactly once. Returns per-output source (all engaged).
  std::vector<std::size_t> route(const std::vector<std::size_t>& dest,
                                 RoutingStats* stats = nullptr);

 private:
  std::size_t n_;
  std::vector<Rbn> fabrics_;  // one per destination bit
};

}  // namespace brsmn::baselines
