// A full "copy then route" multicast network: copy network (Lee [6]
// style) cascaded with a Beneš permutation network (looping-routed).
// This is the architecture class of Lee & Oruç's generalized connectors
// [9] that Table 2 compares against: O(n log n)-ish hardware, but
// routing requires a centralized, sequential setup — the contrast the
// BRSMN's self-routing eliminates.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "baselines/benes.hpp"
#include "baselines/copy_network.hpp"
#include "core/multicast_assignment.hpp"
#include "core/stats.hpp"

namespace brsmn::baselines {

class CopyRouteMulticast {
 public:
  explicit CopyRouteMulticast(std::size_t n);

  std::size_t size() const noexcept { return copy_.size(); }

  /// Copy network plus Beneš switches.
  std::size_t switch_count() const noexcept {
    return copy_.switch_count() + benes_.switch_count();
  }

  /// Route a multicast assignment: same delivery contract as
  /// Brsmn::route (verified against it in tests).
  std::vector<std::optional<std::size_t>> route(
      const MulticastAssignment& assignment,
      RoutingStats* stats = nullptr) const;

 private:
  CopyNetwork copy_;
  BenesNetwork benes_;
};

}  // namespace brsmn::baselines
