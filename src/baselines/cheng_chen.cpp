#include "baselines/cheng_chen.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/contracts.hpp"
#include "core/bit_sorter.hpp"

namespace brsmn::baselines {

namespace {

struct Item {
  std::size_t dest = 0;
  std::size_t source = 0;
};

}  // namespace

ChengChenPermutation::ChengChenPermutation(std::size_t n) : n_(n) {
  BRSMN_EXPECTS(is_pow2(n) && n >= 2);
  const int m = log2_exact(n);
  fabrics_.reserve(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) fabrics_.emplace_back(n);
}

int ChengChenPermutation::passes() const noexcept {
  return static_cast<int>(fabrics_.size());
}

std::size_t ChengChenPermutation::switch_count() const {
  return fabrics_.size() * fabrics_.front().topology().switch_count();
}

std::vector<std::size_t> ChengChenPermutation::route(
    const std::vector<std::size_t>& dest, RoutingStats* stats) {
  BRSMN_EXPECTS(dest.size() == n_);
  const int m = log2_exact(n_);
  {
    std::vector<bool> used(n_, false);
    for (std::size_t d : dest) {
      BRSMN_EXPECTS_MSG(d < n_ && !used[d], "input is not a full permutation");
      used[d] = true;
    }
  }

  std::vector<Item> items(n_);
  for (std::size_t i = 0; i < n_; ++i) items[i] = {dest[i], i};

  // Radix sort on destination bits, most significant first. Pass p sorts
  // each block of size n/2^{p-1} on destination bit p-1; each block holds
  // exactly the items destined to its address range, so half its keys are
  // 0 — Theorem 1 with s = block/2 yields ascending order.
  for (int p = 1; p <= m; ++p) {
    Rbn& fabric = fabrics_[static_cast<std::size_t>(p - 1)];
    fabric.reset();
    const int top_stage = m - p + 1;
    const std::size_t block_size = std::size_t{1} << top_stage;
    std::vector<int> keys(block_size);
    for (std::size_t b = 0; b < n_ / block_size; ++b) {
      for (std::size_t i = 0; i < block_size; ++i) {
        keys[i] = msb_at(items[b * block_size + i].dest, p - 1, m);
      }
      configure_bit_sorter(fabric, top_stage, b, keys, block_size / 2, stats);
    }
    items = fabric.propagate(std::move(items),
                             [stats](const SwitchContext& ctx, SwitchSetting s,
                                     Item a, Item b) {
                               if (stats) ++stats->switch_traversals;
                               return unicast_switch(ctx, s, a, b);
                             });
    if (stats) {
      ++stats->fabric_passes;
      stats->gate_delay += config_sweep_delay(top_stage) + datapath_delay(m);
    }
  }

  std::vector<std::size_t> per_output(n_);
  for (std::size_t line = 0; line < n_; ++line) {
    BRSMN_ENSURES_MSG(items[line].dest == line,
                      "permutation not realized at outputs");
    per_output[line] = items[line].source;
  }
  return per_output;
}

}  // namespace brsmn::baselines
