// A naive n x n crossbar multicast switch: the behavioural ground truth
// the BRSMN is compared against in tests and benchmarks.
//
// Functionally trivial (every output selects its input directly) but
// expensive: n^2 crosspoints, so O(n^2) gates — the cost the recursive
// designs of Table 2 exist to avoid.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/multicast_assignment.hpp"

namespace brsmn::baselines {

class CrossbarMulticast {
 public:
  explicit CrossbarMulticast(std::size_t n);

  std::size_t size() const noexcept { return n_; }

  /// Crosspoint count: n^2.
  std::size_t crosspoints() const noexcept { return n_ * n_; }

  /// Gate cost, one gate per crosspoint plus a fanin tree per output.
  std::uint64_t gates() const noexcept {
    return static_cast<std::uint64_t>(n_) * n_ * 2;
  }

  /// Route an assignment; same delivery contract as Brsmn::route.
  std::vector<std::optional<std::size_t>> route(
      const MulticastAssignment& assignment) const;

 private:
  std::size_t n_;
};

}  // namespace brsmn::baselines
