#include "baselines/copy_network.hpp"

#include <numeric>

#include "common/bits.hpp"
#include "common/contracts.hpp"
#include "core/concentrator.hpp"

namespace brsmn::baselines {

namespace {

/// A packet holding a contiguous destination interval [lo, hi], both
/// bounds local to the current sub-network.
struct IntervalPacket {
  std::size_t source = 0;
  std::size_t lo = 0;
  std::size_t hi = 0;
};

using Line = std::optional<IntervalPacket>;

/// Recursive broadcast-banyan interval routing. lines.size() is the
/// sub-network size; on return, out[p] holds the source whose interval
/// contained position p.
void route_banyan(std::vector<Line> lines,
                  std::vector<std::optional<std::size_t>>& out,
                  std::size_t out_base, RoutingStats* stats) {
  const std::size_t n = lines.size();
  if (n == 1) {
    if (lines[0]) {
      BRSMN_ENSURES(lines[0]->lo == 0 && lines[0]->hi == 0);
      out[out_base] = lines[0]->source;
    }
    return;
  }
  const std::size_t half = n / 2;
  std::vector<Line> upper(half), lower(half);
  for (std::size_t i = 0; i < half; ++i) {
    if (stats) ++stats->switch_traversals;
    Line up_out, low_out;
    for (Line* in : {&lines[i], &lines[i + half]}) {
      if (!*in) continue;
      const IntervalPacket& p = **in;
      if (p.hi < half) {
        BRSMN_ENSURES_MSG(!up_out, "copy-network collision (upper)");
        up_out = p;
      } else if (p.lo >= half) {
        BRSMN_ENSURES_MSG(!low_out, "copy-network collision (lower)");
        low_out = IntervalPacket{p.source, p.lo - half, p.hi - half};
      } else {
        // Boundary-spanning interval: the switch broadcasts, splitting
        // the interval at the half boundary (Lee's boundary cell).
        BRSMN_ENSURES_MSG(!up_out && !low_out,
                          "copy-network collision (split)");
        up_out = IntervalPacket{p.source, p.lo, half - 1};
        low_out = IntervalPacket{p.source, 0, p.hi - half};
        if (stats) ++stats->broadcast_ops;
      }
    }
    upper[i] = up_out;
    lower[i] = low_out;
  }
  route_banyan(std::move(upper), out, out_base, stats);
  route_banyan(std::move(lower), out, out_base + half, stats);
}

}  // namespace

CopyNetwork::CopyNetwork(std::size_t n) : n_(n) {
  BRSMN_EXPECTS(is_pow2(n) && n >= 2);
}

std::size_t CopyNetwork::switch_count() const noexcept {
  // Concentrator RBN plus broadcast banyan, (n/2) log n switches each.
  return 2 * (n_ / 2) * static_cast<std::size_t>(log2_exact(n_));
}

std::vector<std::optional<std::size_t>> CopyNetwork::route(
    const std::vector<std::size_t>& copies, RoutingStats* stats) const {
  BRSMN_EXPECTS(copies.size() == n_);
  const std::size_t total =
      std::accumulate(copies.begin(), copies.end(), std::size_t{0});
  BRSMN_EXPECTS_MSG(total <= n_, "total copies exceed the output count");

  // 1) Concentrate active packets to the top lines.
  std::size_t actives = 0;
  std::vector<std::optional<std::size_t>> packet(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    if (copies[i] > 0) {
      packet[i] = i;
      ++actives;
    }
  }
  Concentrator concentrator(n_);
  packet = concentrator.route(std::move(packet), stats);

  // 2) Running-sum interval assignment over the concentrated order.
  std::vector<Line> lines(n_);
  std::size_t next = 0;
  for (std::size_t q = 0; q < n_; ++q) {
    if (!packet[q]) continue;
    BRSMN_ENSURES_MSG(q < actives, "concentration failed");
    const std::size_t src = *packet[q];
    lines[q] = IntervalPacket{src, next, next + copies[src] - 1};
    next += copies[src];
  }

  // 3) Broadcast-banyan interval routing.
  std::vector<std::optional<std::size_t>> out(n_);
  route_banyan(std::move(lines), out, 0, stats);
  return out;
}

}  // namespace brsmn::baselines
