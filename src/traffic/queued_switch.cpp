#include "traffic/queued_switch.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace brsmn::traffic {

namespace {

api::ResilientOptions router_options(
    const QueuedMulticastSwitch::Config& config) {
  api::ResilientOptions o;
  o.engine = config.engine;
  o.retry = config.retry;
  o.self_check = config.self_check;
  o.faults = config.faults;
  o.metrics = config.metrics;
  o.tracer = config.tracer;
  o.plan_cache = config.plan_cache;
  return o;
}

}  // namespace

QueuedMulticastSwitch::QueuedMulticastSwitch(const Config& config)
    : config_(config),
      router_(config.ports, router_options(config)),
      queues_(config.ports) {
  if constexpr (obs::kEnabled) {
    if (config_.metrics != nullptr) {
      obs::MetricRegistry& r = *config_.metrics;
      instruments_.admitted_cells =
          &r.histogram("switch.admitted_cells_per_epoch");
      instruments_.admitted_fanout =
          &r.histogram("switch.admitted_fanout_per_epoch");
      instruments_.cell_latency = &r.histogram("switch.cell_latency_epochs");
      instruments_.backlog_cells = &r.gauge("switch.backlog_cells");
      instruments_.backlog_copies = &r.gauge("switch.backlog_copies");
      instruments_.max_queue = &r.gauge("switch.max_queue_length");
      instruments_.epochs = &r.counter("switch.epochs");
      instruments_.delivered = &r.counter("switch.delivered_copies");
      instruments_.completed = &r.counter("switch.completed_cells");
      instruments_.dropped = &r.counter("switch.dropped_cells");
      instruments_.aborted = &r.counter("switch.aborted_epochs");
      instruments_.degraded = &r.counter("switch.degraded_epochs");
      instruments_.group_routes = &r.counter("switch.group_routes");
    }
  }
  if (config_.groups != nullptr) {
    BRSMN_EXPECTS_MSG(config_.groups->network_size() == config_.ports,
                      "group manager width must match the switch ports");
  }
}

void QueuedMulticastSwitch::offer(const Offer& offer) {
  BRSMN_EXPECTS(offer.input < ports());
  BRSMN_EXPECTS(!offer.destinations.empty());
  QueuedCell cell;
  cell.remaining = offer.destinations;
  cell.arrival = epoch_;
  queues_[offer.input].push_back(std::move(cell));
  ++offered_;
}

void QueuedMulticastSwitch::offer_all(const std::vector<Offer>& offers) {
  for (const Offer& o : offers) offer(o);
}

void QueuedMulticastSwitch::expire_old_cells(EpochReport& report) {
  if (config_.max_cell_age == 0) return;
  for (auto& queue : queues_) {
    // Arrival epochs are non-decreasing toward the tail, so expired
    // cells cluster at the head.
    while (!queue.empty() &&
           epoch_ - queue.front().arrival > config_.max_cell_age) {
      ++dropped_cells_;
      ++report.dropped_cells;
      dropped_copies_ += queue.front().remaining.size();
      queue.pop_front();
    }
  }
}

QueuedMulticastSwitch::EpochReport QueuedMulticastSwitch::step() {
  const std::size_t n = ports();
  EpochReport report;
  obs::TraceSpan epoch_span(config_.tracer, "switch.epoch");

  expire_old_cells(report);

  // Schedule: walk inputs round-robin from rr_pointer_, admitting from
  // each head cell the destinations not yet claimed this epoch.
  MulticastAssignment assignment(n);
  std::vector<bool> claimed(n, false);
  // For each admitted input, which destinations were served.
  std::vector<std::vector<std::size_t>> served(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t input = (rr_pointer_ + k) % n;
    if (queues_[input].empty()) continue;
    QueuedCell& head = queues_[input].front();
    std::vector<std::size_t> take;
    for (const std::size_t d : head.remaining) {
      if (!claimed[d]) take.push_back(d);
    }
    if (take.empty()) continue;
    if (!config_.fanout_splitting && take.size() != head.remaining.size()) {
      continue;  // whole-cell discipline: all or nothing
    }
    for (const std::size_t d : take) {
      claimed[d] = true;
      assignment.connect(input, d);
    }
    served[input] = std::move(take);
    ++report.admitted_cells;
  }
  rr_pointer_ = (rr_pointer_ + 1) % n;

  // Route through the resilient fabric. A Failed outcome aborts the
  // epoch: nothing retires, the admitted cells stay queued (their
  // destinations will be re-admitted next epoch), so no cell is lost.
  if (report.admitted_cells > 0) {
    const api::RequestOutcome outcome = router_.route(assignment);
    if (outcome.outcome == api::RouteOutcome::Failed) {
      report.aborted = true;
      ++aborted_epochs_;
      for (auto& s : served) s.clear();
    } else {
      report.degraded =
          outcome.outcome == api::RouteOutcome::DeliveredDegraded;
      degraded_epochs_ += report.degraded;
      for (const auto& d : outcome.result->delivered) {
        report.delivered_copies += d.has_value();
      }
    }
  }

  // Retire served destinations; complete cells whose last copy left.
  for (std::size_t input = 0; input < n; ++input) {
    if (served[input].empty()) continue;
    QueuedCell& head = queues_[input].front();
    auto& rem = head.remaining;
    for (const std::size_t d : served[input]) {
      rem.erase(std::find(rem.begin(), rem.end(), d));
    }
    if (rem.empty()) {
      const std::size_t wait = epoch_ - head.arrival;
      latency_total_ += wait;
      latency_max_ = std::max(latency_max_, wait);
      ++completed_;
      ++report.completed_cells;
      queues_[input].pop_front();
      if (instruments_.cell_latency != nullptr) {
        instruments_.cell_latency->record(static_cast<double>(wait));
      }
    }
  }
  delivered_ += report.delivered_copies;
  ++epoch_;
  if constexpr (obs::kEnabled) {
    if (config_.tracer != nullptr) {
      config_.tracer->counter("switch.backlog_cells",
                              static_cast<double>(backlog_cells()));
      config_.tracer->counter("switch.backlog_copies",
                              static_cast<double>(backlog_copies()));
    }
  }
  if constexpr (obs::kEnabled) {
    if (config_.metrics != nullptr) {
      instruments_.admitted_cells->record(
          static_cast<double>(report.admitted_cells));
      instruments_.admitted_fanout->record(
          static_cast<double>(report.delivered_copies));
      instruments_.backlog_cells->set(static_cast<double>(backlog_cells()));
      instruments_.backlog_copies->set(static_cast<double>(backlog_copies()));
      instruments_.max_queue->set(static_cast<double>(max_queue_length()));
      instruments_.epochs->add(1);
      instruments_.delivered->add(report.delivered_copies);
      instruments_.completed->add(report.completed_cells);
      instruments_.dropped->add(report.dropped_cells);
      instruments_.aborted->add(report.aborted ? 1 : 0);
      instruments_.degraded->add(report.degraded ? 1 : 0);
    }
  }
  // Cell conservation (the chaos harness's core safety property).
  BRSMN_ENSURES_MSG(
      offered_ == completed_ + dropped_cells_ + backlog_cells(),
      "queued switch lost or invented a cell");
  return report;
}

QueuedMulticastSwitch::EpochReport QueuedMulticastSwitch::route_group(
    api::GroupId group) {
  BRSMN_EXPECTS_MSG(config_.groups != nullptr,
                    "route_group requires Config::groups");
  EpochReport report;
  obs::TraceSpan span(config_.tracer, "switch.group_route");
  const api::RequestOutcome outcome =
      router_.route_group(group, *config_.groups);
  if (outcome.outcome == api::RouteOutcome::Failed) {
    report.aborted = true;
    ++aborted_epochs_;
  } else {
    report.degraded = outcome.outcome == api::RouteOutcome::DeliveredDegraded;
    degraded_epochs_ += report.degraded;
    for (const auto& d : outcome.result->delivered) {
      report.delivered_copies += d.has_value();
    }
  }
  ++group_routes_;
  if constexpr (obs::kEnabled) {
    if (config_.metrics != nullptr) {
      instruments_.group_routes->add(1);
      instruments_.aborted->add(report.aborted ? 1 : 0);
      instruments_.degraded->add(report.degraded ? 1 : 0);
    }
  }
  return report;
}

std::size_t QueuedMulticastSwitch::backlog_cells() const {
  std::size_t count = 0;
  for (const auto& q : queues_) count += q.size();
  return count;
}

std::size_t QueuedMulticastSwitch::backlog_copies() const {
  std::size_t count = 0;
  for (const auto& q : queues_) {
    for (const auto& cell : q) count += cell.remaining.size();
  }
  return count;
}

std::size_t QueuedMulticastSwitch::max_queue_length() const {
  std::size_t longest = 0;
  for (const auto& q : queues_) longest = std::max(longest, q.size());
  return longest;
}

LatencySummary QueuedMulticastSwitch::latency() const {
  LatencySummary s;
  s.completed_cells = completed_;
  s.max = latency_max_;
  s.mean = completed_ == 0 ? 0.0
                           : static_cast<double>(latency_total_) /
                                 static_cast<double>(completed_);
  return s;
}

}  // namespace brsmn::traffic
