#include "traffic/queued_switch.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace brsmn::traffic {

QueuedMulticastSwitch::QueuedMulticastSwitch(const Config& config)
    : config_(config),
      fabric_(config.ports),
      queues_(config.ports) {
  if constexpr (obs::kEnabled) {
    if (config_.metrics != nullptr) {
      obs::MetricRegistry& r = *config_.metrics;
      instruments_.admitted_cells =
          &r.histogram("switch.admitted_cells_per_epoch");
      instruments_.admitted_fanout =
          &r.histogram("switch.admitted_fanout_per_epoch");
      instruments_.cell_latency = &r.histogram("switch.cell_latency_epochs");
      instruments_.backlog_cells = &r.gauge("switch.backlog_cells");
      instruments_.backlog_copies = &r.gauge("switch.backlog_copies");
      instruments_.max_queue = &r.gauge("switch.max_queue_length");
      instruments_.epochs = &r.counter("switch.epochs");
      instruments_.delivered = &r.counter("switch.delivered_copies");
      instruments_.completed = &r.counter("switch.completed_cells");
    }
  }
}

void QueuedMulticastSwitch::offer(const Offer& offer) {
  BRSMN_EXPECTS(offer.input < ports());
  BRSMN_EXPECTS(!offer.destinations.empty());
  QueuedCell cell;
  cell.remaining = offer.destinations;
  cell.arrival = epoch_;
  queues_[offer.input].push_back(std::move(cell));
}

void QueuedMulticastSwitch::offer_all(const std::vector<Offer>& offers) {
  for (const Offer& o : offers) offer(o);
}

QueuedMulticastSwitch::EpochReport QueuedMulticastSwitch::step() {
  const std::size_t n = ports();
  EpochReport report;
  obs::TraceSpan epoch_span(config_.tracer, "switch.epoch");

  // Schedule: walk inputs round-robin from rr_pointer_, admitting from
  // each head cell the destinations not yet claimed this epoch.
  MulticastAssignment assignment(n);
  std::vector<bool> claimed(n, false);
  // For each admitted input, which destinations were served.
  std::vector<std::vector<std::size_t>> served(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t input = (rr_pointer_ + k) % n;
    if (queues_[input].empty()) continue;
    QueuedCell& head = queues_[input].front();
    std::vector<std::size_t> take;
    for (const std::size_t d : head.remaining) {
      if (!claimed[d]) take.push_back(d);
    }
    if (take.empty()) continue;
    if (!config_.fanout_splitting && take.size() != head.remaining.size()) {
      continue;  // whole-cell discipline: all or nothing
    }
    for (const std::size_t d : take) {
      claimed[d] = true;
      assignment.connect(input, d);
    }
    served[input] = std::move(take);
    ++report.admitted_cells;
  }
  rr_pointer_ = (rr_pointer_ + 1) % n;

  // Route through the self-routing fabric (verifies delivery itself).
  if (report.admitted_cells > 0) {
    RouteOptions options;
    options.metrics = config_.metrics;
    options.tracer = config_.tracer;
    const RouteResult result = fabric_.route(assignment, options);
    for (const auto& d : result.delivered) {
      report.delivered_copies += d.has_value();
    }
  }

  // Retire served destinations; complete cells whose last copy left.
  for (std::size_t input = 0; input < n; ++input) {
    if (served[input].empty()) continue;
    QueuedCell& head = queues_[input].front();
    auto& rem = head.remaining;
    for (const std::size_t d : served[input]) {
      rem.erase(std::find(rem.begin(), rem.end(), d));
    }
    if (rem.empty()) {
      const std::size_t wait = epoch_ - head.arrival;
      latency_total_ += wait;
      latency_max_ = std::max(latency_max_, wait);
      ++completed_;
      ++report.completed_cells;
      queues_[input].pop_front();
      if (instruments_.cell_latency != nullptr) {
        instruments_.cell_latency->record(static_cast<double>(wait));
      }
    }
  }
  delivered_ += report.delivered_copies;
  ++epoch_;
  if constexpr (obs::kEnabled) {
    if (config_.tracer != nullptr) {
      config_.tracer->counter("switch.backlog_cells",
                              static_cast<double>(backlog_cells()));
      config_.tracer->counter("switch.backlog_copies",
                              static_cast<double>(backlog_copies()));
    }
  }
  if constexpr (obs::kEnabled) {
    if (config_.metrics != nullptr) {
      instruments_.admitted_cells->record(
          static_cast<double>(report.admitted_cells));
      instruments_.admitted_fanout->record(
          static_cast<double>(report.delivered_copies));
      instruments_.backlog_cells->set(static_cast<double>(backlog_cells()));
      instruments_.backlog_copies->set(static_cast<double>(backlog_copies()));
      instruments_.max_queue->set(static_cast<double>(max_queue_length()));
      instruments_.epochs->add(1);
      instruments_.delivered->add(report.delivered_copies);
      instruments_.completed->add(report.completed_cells);
    }
  }
  return report;
}

std::size_t QueuedMulticastSwitch::backlog_cells() const {
  std::size_t count = 0;
  for (const auto& q : queues_) count += q.size();
  return count;
}

std::size_t QueuedMulticastSwitch::backlog_copies() const {
  std::size_t count = 0;
  for (const auto& q : queues_) {
    for (const auto& cell : q) count += cell.remaining.size();
  }
  return count;
}

std::size_t QueuedMulticastSwitch::max_queue_length() const {
  std::size_t longest = 0;
  for (const auto& q : queues_) longest = std::max(longest, q.size());
  return longest;
}

LatencySummary QueuedMulticastSwitch::latency() const {
  LatencySummary s;
  s.completed_cells = completed_;
  s.max = latency_max_;
  s.mean = completed_ == 0 ? 0.0
                           : static_cast<double>(latency_total_) /
                                 static_cast<double>(completed_);
  return s;
}

}  // namespace brsmn::traffic
