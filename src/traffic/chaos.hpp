// Chaos harness for the queued multicast switch: replay a seeded fault
// schedule against seeded traffic, watch the switch degrade and recover,
// and certify that nothing was silently lost.
//
// The harness drives QueuedMulticastSwitch through three regimes: an
// arrival window (traffic + faults active), a drain window (arrivals
// stop, faults may persist), and the steady state after the last fault's
// activation window closes. Throughout, the switch's own conservation
// invariant holds (offered == completed + dropped + backlog after every
// epoch); the harness additionally reports whether the backlog fully
// drained and how the fault counters moved, so tests and CI can assert
// recovery — not just survival.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "api/resilient_router.hpp"
#include "core/brsmn.hpp"
#include "fault/fault_plan.hpp"
#include "traffic/arrivals.hpp"
#include "traffic/queued_switch.hpp"

namespace brsmn::obs {
class MetricRegistry;
class Tracer;
}  // namespace brsmn::obs

namespace brsmn::traffic {

struct ChaosConfig {
  std::size_t ports = 16;
  std::uint64_t seed = 1;
  /// Epochs with fresh arrivals; after that the switch drains.
  std::size_t arrival_epochs = 32;
  /// Hard cap on total epochs (arrival + drain). The run stops earlier
  /// once the backlog drains to empty.
  std::size_t max_epochs = 256;
  ArrivalConfig arrivals{};
  /// The fault schedule (validated; empty plan = control run). Faults
  /// keyed to route ordinals fire as the switch routes each epoch.
  fault::FaultPlan plan{};
  /// Forwarded to QueuedMulticastSwitch::Config.
  std::size_t max_cell_age = 0;
  RouteEngine engine = RouteEngine::Scalar;
  api::RetryPolicy retry{};
  obs::MetricRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
};

struct ChaosEpochRecord {
  std::size_t epoch = 0;
  std::size_t offered_cells = 0;
  std::size_t delivered_copies = 0;
  std::size_t completed_cells = 0;
  std::size_t dropped_cells = 0;
  std::size_t backlog_cells = 0;
  bool aborted = false;
  bool degraded = false;
};

struct ChaosSummary {
  std::size_t epochs_run = 0;
  std::size_t offered_cells = 0;
  std::size_t completed_cells = 0;
  std::size_t dropped_cells = 0;
  std::size_t backlog_cells = 0;  ///< remaining at the end of the run
  std::size_t delivered_copies = 0;
  std::size_t aborted_epochs = 0;
  std::size_t degraded_epochs = 0;
  std::size_t peak_backlog_cells = 0;
  /// The backlog reached zero before max_epochs ran out.
  bool drained = false;
  /// Router fault counters at the end of the run.
  std::uint64_t faults_detected = 0;
  std::uint64_t faults_recovered = 0;
  std::uint64_t faults_gaveup = 0;
  std::vector<ChaosEpochRecord> epochs;

  /// offered == completed + dropped + backlog — the no-silent-loss
  /// identity. (The switch asserts it per epoch; exposed here so
  /// harness users can assert it end-to-end too.)
  bool conserved() const noexcept {
    return offered_cells == completed_cells + dropped_cells + backlog_cells;
  }
};

/// Run one chaos scenario. Deterministic given the config (seeded
/// arrivals, declarative fault plan, fixed scheduler).
ChaosSummary run_chaos(const ChaosConfig& config);

}  // namespace brsmn::traffic
