#include "traffic/chaos.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "fault/fault_injector.hpp"

namespace brsmn::traffic {

ChaosSummary run_chaos(const ChaosConfig& config) {
  BRSMN_EXPECTS(config.max_epochs >= config.arrival_epochs);
  fault::FaultPlan plan = config.plan;
  if (plan.n == 0) plan.n = config.ports;  // empty plan = control run
  fault::FaultInjector injector(std::move(plan));

  QueuedMulticastSwitch::Config sw_config;
  sw_config.ports = config.ports;
  sw_config.metrics = config.metrics;
  sw_config.tracer = config.tracer;
  sw_config.engine = config.engine;
  sw_config.faults = &injector;
  sw_config.retry = config.retry;
  sw_config.max_cell_age = config.max_cell_age;
  QueuedMulticastSwitch sw(sw_config);

  Rng rng(config.seed);
  ChaosSummary summary;
  for (std::size_t epoch = 0; epoch < config.max_epochs; ++epoch) {
    const bool arrivals_open = epoch < config.arrival_epochs;
    ChaosEpochRecord record;
    record.epoch = epoch;
    if (arrivals_open) {
      const std::vector<Offer> offers =
          draw_arrivals(config.ports, config.arrivals, rng);
      sw.offer_all(offers);
      record.offered_cells = offers.size();
    }
    const QueuedMulticastSwitch::EpochReport report = sw.step();
    record.delivered_copies = report.delivered_copies;
    record.completed_cells = report.completed_cells;
    record.dropped_cells = report.dropped_cells;
    record.backlog_cells = sw.backlog_cells();
    record.aborted = report.aborted;
    record.degraded = report.degraded;
    summary.epochs.push_back(record);
    summary.peak_backlog_cells =
        std::max(summary.peak_backlog_cells, record.backlog_cells);
    ++summary.epochs_run;
    if (!arrivals_open && sw.backlog_cells() == 0) {
      summary.drained = true;
      break;
    }
  }
  if (sw.backlog_cells() == 0) summary.drained = true;

  summary.offered_cells = sw.offered_cells();
  summary.completed_cells = sw.latency().completed_cells;
  summary.dropped_cells = sw.dropped_cells();
  summary.backlog_cells = sw.backlog_cells();
  summary.delivered_copies = sw.delivered_copies();
  summary.aborted_epochs = sw.aborted_epochs();
  summary.degraded_epochs = sw.degraded_epochs();
  summary.faults_detected = sw.router().faults_detected();
  summary.faults_recovered = sw.router().faults_recovered();
  summary.faults_gaveup = sw.router().faults_gaveup();
  BRSMN_ENSURES_MSG(summary.conserved(),
                    "chaos run lost or invented cells");
  return summary;
}

}  // namespace brsmn::traffic
