// A queued multicast packet switch built on the BRSMN fabric: per-input
// FIFO queues, a round-robin epoch scheduler with optional fanout
// splitting, and latency/throughput accounting.
//
// Each epoch the scheduler admits a conflict-free multicast assignment
// from the queue heads (destination sets must be disjoint within an
// epoch), routes it through the self-routing fabric, and retires served
// destinations. With *fanout splitting* (the standard discipline in the
// multicast switching literature) a head cell may be served partially —
// whatever subset of its destinations is still unclaimed this epoch —
// which removes head-of-line blocking between overlapping multicasts.
//
// Fault behavior: the fabric is driven through api::ResilientRouter, so
// a detected fault retries and falls back before it reaches the switch.
// An epoch whose route still Fails is *aborted* — nothing is retired,
// the admitted cells stay queued and are re-offered to later epochs — so
// no cell is ever silently lost. An optional drop policy (max_cell_age)
// expires cells that have waited too long, with explicit accounting:
// offered == completed + dropped + backlog holds at every epoch
// boundary (verified by tests/test_chaos.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "api/resilient_router.hpp"
#include "core/brsmn.hpp"
#include "traffic/arrivals.hpp"

namespace brsmn::obs {
class Counter;
class Gauge;
class Histogram;
class MetricRegistry;
class Tracer;
}  // namespace brsmn::obs

namespace brsmn::fault {
class FaultInjector;
}  // namespace brsmn::fault

namespace brsmn::traffic {

struct LatencySummary {
  double mean = 0.0;
  std::size_t max = 0;
  std::size_t completed_cells = 0;
};

class QueuedMulticastSwitch {
 public:
  struct Config {
    std::size_t ports = 0;
    bool fanout_splitting = true;
    /// When set, every step() records epoch metrics under "switch.*"
    /// (admitted cells/fanout histograms, queue-depth gauges, cell
    /// completion latency) and the fabric records "route.*" phase
    /// timings into the same registry.
    obs::MetricRegistry* metrics = nullptr;
    /// When set, every step() emits a "switch.epoch" span (the fabric's
    /// per-level spans nested inside) plus switch.backlog_cells /
    /// switch.backlog_copies counter tracks, so queue depth is plotted
    /// against the routing timeline in the Chrome trace.
    obs::Tracer* tracer = nullptr;
    /// Primary routing engine for the fabric (fallbacks per `retry`).
    RouteEngine engine = RouteEngine::Scalar;
    /// Online self-check for every route (see core/brsmn.hpp).
    bool self_check = true;
    /// Fault-injection seam, handed to the resilient router. Null: no
    /// injection (the default).
    fault::FaultInjector* faults = nullptr;
    /// Retry/fallback policy for faulted routes.
    api::RetryPolicy retry{};
    /// Compiled-plan cache shared by every epoch's routes (see
    /// api/plan_cache.hpp): steady traffic patterns re-route the same
    /// assignment each epoch and replay instead of recomputing. Null:
    /// every epoch routes cold (the default).
    api::PlanCache* plan_cache = nullptr;
    /// Dynamic-group registry (api/group_manager.hpp) served by
    /// route_group(). The manager patches plans in `plan_cache` as its
    /// groups churn, so set both to get incremental recompiles. Null:
    /// route_group() is unavailable (the default).
    api::GroupManager* groups = nullptr;
    /// Drop policy: a queued cell older than this many epochs is dropped
    /// (counted, never silently) at the start of a step. 0 disables.
    std::size_t max_cell_age = 0;
  };

  explicit QueuedMulticastSwitch(const Config& config);

  std::size_t ports() const noexcept { return config_.ports; }

  /// Enqueue a cell at its input (arrival epoch = now()).
  void offer(const Offer& offer);

  /// Convenience: enqueue a whole epoch of generated arrivals.
  void offer_all(const std::vector<Offer>& offers);

  struct EpochReport {
    std::size_t admitted_cells = 0;    ///< cells served (fully or partly)
    std::size_t delivered_copies = 0;  ///< destinations served
    std::size_t completed_cells = 0;   ///< cells whose last copy left
    std::size_t dropped_cells = 0;     ///< cells expired by max_cell_age
    /// The route Failed even after retries/fallbacks: nothing was
    /// retired this epoch and the admitted cells remain queued.
    bool aborted = false;
    /// The route needed a fallback path (DeliveredDegraded).
    bool degraded = false;
  };

  /// Run one epoch: expire, schedule, route, retire. Advances the clock.
  EpochReport step();

  /// Route a dynamic group's current membership through the same
  /// resilient fabric path the cell pipeline uses (retry ladder, plan
  /// cache, fault seam). Group service is control-plane traffic: no
  /// cell is admitted or retired, the epoch clock does not advance, and
  /// the cell-conservation invariant is untouched — the report carries
  /// only delivered_copies (destinations the group route reached) and
  /// the aborted/degraded flags. Requires Config::groups.
  EpochReport route_group(api::GroupId group);

  /// Group routes served by route_group() so far.
  std::size_t group_routes() const noexcept { return group_routes_; }

  /// Epochs elapsed.
  std::size_t now() const noexcept { return epoch_; }

  /// Cells currently queued (heads included).
  std::size_t backlog_cells() const;

  /// Destination copies still owed to queued cells.
  std::size_t backlog_copies() const;

  /// Longest input queue.
  std::size_t max_queue_length() const;

  /// Completion latency statistics (arrival epoch -> last-copy epoch)
  /// over all completed cells so far.
  LatencySummary latency() const;

  /// Total destination copies delivered so far.
  std::size_t delivered_copies() const noexcept { return delivered_; }

  /// Cell conservation: offered_cells() == latency().completed_cells +
  /// dropped_cells() + backlog_cells() at every epoch boundary.
  std::size_t offered_cells() const noexcept { return offered_; }
  std::size_t dropped_cells() const noexcept { return dropped_cells_; }
  std::size_t dropped_copies() const noexcept { return dropped_copies_; }

  /// Epochs whose route Failed after the full retry ladder.
  std::size_t aborted_epochs() const noexcept { return aborted_epochs_; }
  /// Epochs served by a fallback path.
  std::size_t degraded_epochs() const noexcept { return degraded_epochs_; }

  /// The underlying resilient router (fault counters, ladder).
  const api::ResilientRouter& router() const noexcept { return router_; }

 private:
  struct QueuedCell {
    std::vector<std::size_t> remaining;  ///< destinations still owed
    std::size_t arrival = 0;
  };

  void expire_old_cells(EpochReport& report);

  /// Registry handles resolved once at construction (null when the
  /// config carries no registry).
  struct Instruments {
    obs::Histogram* admitted_cells = nullptr;
    obs::Histogram* admitted_fanout = nullptr;
    obs::Histogram* cell_latency = nullptr;
    obs::Gauge* backlog_cells = nullptr;
    obs::Gauge* backlog_copies = nullptr;
    obs::Gauge* max_queue = nullptr;
    obs::Counter* epochs = nullptr;
    obs::Counter* delivered = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Counter* aborted = nullptr;
    obs::Counter* degraded = nullptr;
    obs::Counter* group_routes = nullptr;
  };

  Config config_;
  api::ResilientRouter router_;
  Instruments instruments_;
  std::vector<std::deque<QueuedCell>> queues_;
  std::size_t epoch_ = 0;
  std::size_t rr_pointer_ = 0;
  std::size_t delivered_ = 0;
  std::uint64_t latency_total_ = 0;
  std::size_t latency_max_ = 0;
  std::size_t completed_ = 0;
  std::size_t offered_ = 0;
  std::size_t dropped_cells_ = 0;
  std::size_t dropped_copies_ = 0;
  std::size_t aborted_epochs_ = 0;
  std::size_t degraded_epochs_ = 0;
  std::size_t group_routes_ = 0;
};

}  // namespace brsmn::traffic
