// Synthetic multicast traffic generators for the queued-switch
// simulator: Bernoulli arrivals with configurable fanout distributions,
// uniform or hotspot destination patterns. These model the workloads the
// paper's introduction cites (conference calls, video distribution,
// collective operations) at the cell level.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace brsmn::traffic {

/// How a generated cell picks its number of destinations.
struct FanoutDistribution {
  /// Minimum / maximum fanout (inclusive); the draw is uniform.
  std::size_t min_fanout = 1;
  std::size_t max_fanout = 1;
};

struct ArrivalConfig {
  /// Probability that a given input receives a new cell this epoch.
  double arrival_probability = 0.5;
  FanoutDistribution fanout;
  /// Fraction of destinations drawn from the hotspot region [0, ports/8)
  /// instead of uniformly; 0 = pure uniform traffic.
  double hotspot_fraction = 0.0;
};

/// One offered cell: the input it arrives at and its destination set.
struct Offer {
  std::size_t input = 0;
  std::vector<std::size_t> destinations;
};

/// Draw one epoch's worth of arrivals for an n-port switch.
std::vector<Offer> draw_arrivals(std::size_t ports,
                                 const ArrivalConfig& config, Rng& rng);

}  // namespace brsmn::traffic
