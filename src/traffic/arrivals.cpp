#include "traffic/arrivals.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace brsmn::traffic {

std::vector<Offer> draw_arrivals(std::size_t ports,
                                 const ArrivalConfig& config, Rng& rng) {
  BRSMN_EXPECTS(ports >= 2);
  BRSMN_EXPECTS(config.arrival_probability >= 0.0 &&
                config.arrival_probability <= 1.0);
  BRSMN_EXPECTS(config.fanout.min_fanout >= 1 &&
                config.fanout.min_fanout <= config.fanout.max_fanout &&
                config.fanout.max_fanout <= ports);
  BRSMN_EXPECTS(config.hotspot_fraction >= 0.0 &&
                config.hotspot_fraction <= 1.0);

  const std::size_t hotspot_size = std::max<std::size_t>(1, ports / 8);
  std::vector<Offer> offers;
  for (std::size_t input = 0; input < ports; ++input) {
    if (!rng.chance(config.arrival_probability)) continue;
    const std::size_t fanout =
        rng.uniform(config.fanout.min_fanout, config.fanout.max_fanout);
    std::vector<bool> picked(ports, false);
    Offer offer;
    offer.input = input;
    while (offer.destinations.size() < fanout) {
      const std::size_t d = rng.chance(config.hotspot_fraction)
                                ? rng.uniform(0, hotspot_size - 1)
                                : rng.uniform(0, ports - 1);
      if (picked[d]) continue;
      picked[d] = true;
      offer.destinations.push_back(d);
    }
    std::sort(offer.destinations.begin(), offer.destinations.end());
    offers.push_back(std::move(offer));
  }
  return offers;
}

}  // namespace brsmn::traffic
