// Event tracer for the routing engines: begin/end spans, instant events
// and counter samples, recorded into lock-free per-thread ring buffers
// and exported as Chrome trace-event JSON (chrome://tracing / Perfetto).
//
// Where obs/metrics.hpp answers "how long does phase X take on average",
// the tracer answers "what did *this* route do, in time order": one lane
// per recording thread, nested spans per level/phase, and counter tracks
// (queue depth, waves in flight) alongside.
//
// Flight-recorder semantics: each thread owns a fixed-capacity ring; when
// it fills, the oldest events are overwritten. Memory is bounded by
// capacity_per_thread() x recording threads, so a tracer can stay
// attached to a long-lived switch and always hold the most recent window.
//
// Concurrency: record calls are lock-free — the owning thread writes its
// slots and publishes them with one release store; a mutex is taken only
// on a thread's *first* event (buffer registration). collect() and the
// exporters are meant for quiescent reading (after workers join); they
// see every event published before the call.
//
// Cost discipline mirrors PhaseTimer: every engine hook is guarded by
// `if constexpr (obs::kEnabled)` plus a null-tracer check, so a null
// recorder is one branch and a BRSMN_OBS=OFF build compiles the hooks
// away entirely. The Tracer class itself stays functional either way so
// its tests run in every configuration.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"  // obs::kEnabled

namespace brsmn::obs {

enum class TraceEventKind : std::uint8_t {
  Begin,    ///< span opens ("ph":"B")
  End,      ///< span closes ("ph":"E")
  Instant,  ///< point event ("ph":"i")
  Counter,  ///< counter-track sample ("ph":"C")
};

std::string_view trace_phase(TraceEventKind kind);  ///< the Chrome "ph" code

/// One event as handed back by Tracer::collect(): decoded from the ring
/// slots, stamped with the recording thread's lane id.
struct CollectedEvent {
  TraceEventKind kind = TraceEventKind::Instant;
  std::string name;
  std::uint32_t tid = 0;     ///< lane id (dense, assigned per thread)
  std::int64_t ts_ns = 0;    ///< nanoseconds since tracer construction
  double value = 0.0;        ///< Counter events only
};

class Tracer {
 public:
  /// Longest event name stored verbatim; longer names are truncated.
  static constexpr std::size_t kMaxNameLength = 47;

  /// `events_per_thread` is rounded up to a power of two (>= 16). Each
  /// recording thread allocates one ring of that capacity on first use.
  explicit Tracer(std::size_t events_per_thread = std::size_t{1} << 13);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  std::size_t capacity_per_thread() const noexcept { return capacity_; }

  void begin(std::string_view name) noexcept;
  void end(std::string_view name) noexcept;
  void instant(std::string_view name) noexcept;
  void counter(std::string_view name, double value) noexcept;

  /// Recording threads seen so far (= lanes in the export).
  std::size_t thread_count() const;

  /// Events overwritten by ring wrap-around across all threads.
  std::uint64_t dropped_events() const;

  /// Snapshot of every retained event, merged across threads and sorted
  /// by timestamp (ties keep per-thread recording order). Call after the
  /// recording threads are done (or otherwise quiescent).
  std::vector<CollectedEvent> collect() const;

 private:
  struct ThreadBuffer;

  ThreadBuffer& local_buffer();
  void record(TraceEventKind kind, std::string_view name,
              double value) noexcept;

  const std::uint64_t id_;  ///< process-unique, keys the thread-local cache
  std::size_t capacity_;
  std::chrono::steady_clock::time_point t0_;
  mutable std::mutex mutex_;  ///< guards buffers_ (registration + collect)
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII span: begin on construction, end on destruction (or early via
/// end()). A null tracer disables it; with BRSMN_OBS_DISABLED it compiles
/// to nothing, so instrumented scopes can stay unconditional.
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, std::string_view name) noexcept {
#if !defined(BRSMN_OBS_DISABLED)
    tracer_ = tracer;
    if (tracer_ == nullptr) return;
    const std::size_t len = std::min(name.size(), sizeof(name_) - 1);
    name.copy(name_, len);
    name_[len] = '\0';
    tracer_->begin(std::string_view(name_, len));
#else
    (void)tracer;
    (void)name;
#endif
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { end(); }

  /// Emits the end event once; later calls (and the destructor) no-op.
  void end() noexcept {
#if !defined(BRSMN_OBS_DISABLED)
    if (tracer_ == nullptr) return;
    tracer_->end(name_);
    tracer_ = nullptr;
#endif
  }

 private:
#if !defined(BRSMN_OBS_DISABLED)
  Tracer* tracer_ = nullptr;
  char name_[Tracer::kMaxNameLength + 1] = {};
#endif
};

/// Chrome trace-event JSON for the tracer's retained events: an object
/// with "displayTimeUnit" and a "traceEvents" array of B/E/i/C events
/// (ts in microseconds, pid 1, tid = lane id). Per lane, B/E pairs are
/// guaranteed balanced: orphaned E events whose B was evicted by the ring
/// are dropped, and spans still open at the end are closed at the last
/// timestamp.
std::string export_chrome_trace(const Tracer& tracer);

/// Same, over an already-collected (ts-sorted) event snapshot.
std::string export_chrome_trace(std::span<const CollectedEvent> events);

/// CLI-friendly dump: write the Chrome trace to `path` ("-" = stdout).
/// Prints to stderr and returns false on failure instead of throwing.
bool try_write_trace(const std::string& path, const Tracer& tracer);

}  // namespace brsmn::obs
