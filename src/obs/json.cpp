#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cstddef>

#include "common/contracts.hpp"

namespace brsmn::obs {

bool JsonValue::as_bool() const {
  BRSMN_EXPECTS_MSG(is_bool(), "JSON value is not a bool");
  return std::get<bool>(value_);
}

double JsonValue::as_number() const {
  BRSMN_EXPECTS_MSG(is_number(), "JSON value is not a number");
  return std::get<double>(value_);
}

const std::string& JsonValue::as_string() const {
  BRSMN_EXPECTS_MSG(is_string(), "JSON value is not a string");
  return std::get<std::string>(value_);
}

const JsonArray& JsonValue::as_array() const {
  BRSMN_EXPECTS_MSG(is_array(), "JSON value is not an array");
  return std::get<JsonArray>(value_);
}

const JsonObject& JsonValue::as_object() const {
  BRSMN_EXPECTS_MSG(is_object(), "JSON value is not an object");
  return std::get<JsonObject>(value_);
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonObject& obj = as_object();
  const auto it = obj.find(key);
  BRSMN_EXPECTS_MSG(it != obj.end(), "missing JSON key: " + key);
  return it->second;
}

bool JsonValue::contains(const std::string& key) const {
  const JsonObject& obj = as_object();
  return obj.find(key) != obj.end();
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_whitespace();
    check(pos_ == text_.size(), "trailing characters after JSON document");
    return v;
  }

 private:
  void check(bool cond, const std::string& what) {
    if (!cond) {
      throw ContractViolation("JSON parse error at byte " +
                              std::to_string(pos_) + ": " + what);
    }
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    check(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    check(peek() == c, std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        check(consume_literal("true"), "invalid literal");
        return JsonValue(true);
      case 'f':
        check(consume_literal("false"), "invalid literal");
        return JsonValue(false);
      case 'n':
        check(consume_literal("null"), "invalid literal");
        return JsonValue(nullptr);
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject obj;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      obj.emplace(std::move(key), parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(std::move(obj));
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray arr;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      check(pos_ < text_.size(), "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        check(pos_ < text_.size(), "unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          default: check(false, "unsupported escape sequence");
        }
      } else {
        check(static_cast<unsigned char>(c) >= 0x20,
              "unescaped control character in string");
        out += c;
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    check(pos_ > start, "expected a JSON value");
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    check(ec == std::errc{} && end == text_.data() + pos_, "invalid number");
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace brsmn::obs
