#include "obs/fabric_heatmap.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "common/contracts.hpp"

namespace brsmn::obs {

namespace {

constexpr std::size_t kWordBits = 64;

constexpr std::size_t words_for(std::size_t n) {
  return (n + kWordBits - 1) / kWordBits;
}

/// Bit positions p with (p & d) == 0 — the upper-port lines of a stage
/// with pairing distance d < 64.
constexpr std::uint64_t upper_mask(std::size_t d) {
  switch (d) {
    case 1: return 0x5555555555555555ULL;
    case 2: return 0x3333333333333333ULL;
    case 4: return 0x0F0F0F0F0F0F0F0FULL;
    case 8: return 0x00FF00FF00FF00FFULL;
    case 16: return 0x0000FFFF0000FFFFULL;
    case 32: return 0x00000000FFFFFFFFULL;
    default: return 0;
  }
}

int log2_floor(std::size_t n) {
  int m = 0;
  while ((std::size_t{1} << (m + 1)) <= n) ++m;
  return m;
}

const char* pass_label(PassKind pass) {
  switch (pass) {
    case PassKind::Scatter: return "scatter";
    case PassKind::Quasisort: return "quasisort";
    case PassKind::Final: return "final";
  }
  return "?";
}

}  // namespace

FabricHeatmap::FabricHeatmap(std::size_t n) : n_(n), m_(log2_floor(n)) {
  BRSMN_EXPECTS(n >= 2 && (n & (n - 1)) == 0);
  words_ = words_for(n);
  const std::size_t rem = n % kWordBits;
  tail_mask_ = rem == 0 ? ~std::uint64_t{0} : (std::uint64_t{1} << rem) - 1;
  level_row_base_.assign(static_cast<std::size_t>(m_), 0);
  std::size_t rows = 0;
  for (int k = 1; k <= m_ - 1; ++k) {
    level_row_base_[static_cast<std::size_t>(k - 1)] = rows;
    rows += 2 * static_cast<std::size_t>(m_ - k + 1);  // scatter + quasisort
  }
  rows_ = rows + 1;  // final 2x2 level
  planes_.assign(rows_ * 2 * kBitPlanes * words_, 0);
  wide_.assign(rows_ * 2 * words_ * kWordBits, 0);
  samples_.assign(rows_, 0);
  scratch_.assign(words_, 0);
}

std::size_t FabricHeatmap::row_index(int level, PassKind pass,
                                     int stage) const {
  if (pass == PassKind::Final) return rows_ - 1;
  BRSMN_EXPECTS(level >= 1 && level <= m_ - 1);
  const int stages = m_ - level + 1;
  BRSMN_EXPECTS(stage >= 1 && stage <= stages);
  std::size_t row = level_row_base_[static_cast<std::size_t>(level - 1)];
  if (pass == PassKind::Quasisort) row += static_cast<std::size_t>(stages);
  return row + static_cast<std::size_t>(stage - 1);
}

void FabricHeatmap::add_word(std::size_t row, int counter, std::size_t w,
                             std::uint64_t mask) {
  // Bit-sliced ripple-carry add: the mask is a per-line +1, carried up the
  // kBitPlanes planes; a carry out of the top plane spills +2^kBitPlanes
  // into the wide per-line accumulators (once per 2^kBitPlanes records per
  // line, so the common case is one or two XOR/AND pairs).
  std::uint64_t* p =
      planes_.data() + ((row * 2 + static_cast<std::size_t>(counter)) *
                        kBitPlanes) * words_ + w;
  std::uint64_t m = mask;
  for (std::size_t b = 0; b < kBitPlanes && m != 0; ++b) {
    std::uint64_t* plane = p + b * words_;
    const std::uint64_t carry = *plane & m;
    *plane ^= m;
    m = carry;
  }
  if (m != 0) {
    std::uint64_t* wide =
        wide_.data() + (row * 2 + static_cast<std::size_t>(counter)) *
                           (words_ * kWordBits) + w * kWordBits;
    while (m != 0) {
      const int bit = std::countr_zero(m);
      wide[bit] += std::uint64_t{1} << kBitPlanes;
      m &= m - 1;
    }
  }
}

void FabricHeatmap::accumulate(std::size_t row, int stage, std::size_t word_lo,
                               std::size_t word_hi, const std::uint64_t* occ) {
  const std::size_t d = std::size_t{1} << (stage - 1);
  if (d < kWordBits) {
    const std::uint64_t um = upper_mask(d);
    for (std::size_t w = word_lo; w < word_hi; ++w) {
      const std::uint64_t o = occ[w];
      if (o == 0) continue;
      const std::uint64_t up = o & um;
      const std::uint64_t low = (o >> d) & um;
      add_word(row, 0, w, up | low);
      if (up != 0) add_word(row, 1, w, up);
      if (low != 0) add_word(row, 1, w, low);
    }
  } else {
    // Pairs span whole words: word w is an upper word iff the d-bit of
    // its base line index is clear, and its partner sits d/64 words on.
    const std::size_t dw = d / kWordBits;
    for (std::size_t w = word_lo; w < word_hi; w += 2 * dw) {
      for (std::size_t t = 0; t < dw; ++t) {
        const std::size_t wu = w + t;
        const std::uint64_t up = occ[wu];
        const std::uint64_t low = occ[wu + dw];
        if ((up | low) == 0) continue;
        add_word(row, 0, wu, up | low);
        if (up != 0) add_word(row, 1, wu, up);
        if (low != 0) add_word(row, 1, wu, low);
      }
    }
  }
}

void FabricHeatmap::record_stage_tags(int level, PassKind pass, int stage,
                                      std::span<const std::uint64_t> t0,
                                      std::span<const std::uint64_t> t1) {
  BRSMN_EXPECTS(t0.size() >= words_ && t1.size() >= words_);
  const std::size_t row = row_index(level, pass, stage);
  for (std::size_t w = 0; w < words_; ++w) {
    scratch_[w] = ~(t0[w] & t1[w]);  // occupied = outside the ε family
  }
  scratch_[words_ - 1] &= tail_mask_;
  accumulate(row, stage, 0, words_, scratch_.data());
  ++samples_[row];
}

void FabricHeatmap::record_lines(int level, PassKind pass, int stage,
                                 const std::vector<LineValue>& lines,
                                 std::size_t line_offset) {
  BRSMN_EXPECTS(!lines.empty() && line_offset + lines.size() <= n_);
  BRSMN_EXPECTS(line_offset % lines.size() == 0);
  const std::size_t row = row_index(level, pass, stage);
  const std::size_t word_lo = line_offset / kWordBits;
  const std::size_t word_hi =
      (line_offset + lines.size() + kWordBits - 1) / kWordBits;
  for (std::size_t w = word_lo; w < word_hi; ++w) scratch_[w] = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    const std::size_t line = line_offset + i;
    scratch_[line / kWordBits] |= std::uint64_t{1} << (line % kWordBits);
  }
  accumulate(row, stage, word_lo, word_hi, scratch_.data());
  if (line_offset == 0) ++samples_[row];
}

void FabricHeatmap::record_final_lines(const std::vector<LineValue>& lines) {
  record_lines(m_, PassKind::Final, 1, lines, 0);
}

void FabricHeatmap::record_final_tags(std::span<const std::uint64_t> t0,
                                      std::span<const std::uint64_t> t1) {
  record_stage_tags(m_, PassKind::Final, 1, t0, t1);
}

std::uint64_t FabricHeatmap::cell_value(std::size_t row, int counter,
                                        std::size_t line) const {
  const std::size_t base =
      (row * 2 + static_cast<std::size_t>(counter));
  std::uint64_t v = wide_[base * (words_ * kWordBits) + line];
  const std::uint64_t* p = planes_.data() + base * kBitPlanes * words_;
  const std::size_t w = line / kWordBits;
  const std::size_t bit = line % kWordBits;
  for (std::size_t b = 0; b < kBitPlanes; ++b) {
    v += ((p[b * words_ + w] >> bit) & 1U) << b;
  }
  return v;
}

void FabricHeatmap::merge(const FabricHeatmap& other) {
  BRSMN_EXPECTS(other.n_ == n_);
  for (std::size_t row = 0; row < rows_; ++row) {
    for (int counter = 0; counter < 2; ++counter) {
      const std::size_t base = row * 2 + static_cast<std::size_t>(counter);
      std::uint64_t* wide = wide_.data() + base * (words_ * kWordBits);
      for (std::size_t line = 0; line < n_; ++line) {
        wide[line] += other.cell_value(row, counter, line);
      }
    }
    samples_[row] += other.samples_[row];
  }
}

void FabricHeatmap::reset() {
  std::fill(planes_.begin(), planes_.end(), 0);
  std::fill(wide_.begin(), wide_.end(), 0);
  std::fill(samples_.begin(), samples_.end(), 0);
}

std::uint64_t FabricHeatmap::routes() const { return samples_.front(); }

HeatmapSnapshot FabricHeatmap::snapshot() const {
  HeatmapSnapshot s;
  s.n = n_;
  s.m = m_;
  s.routes = routes();
  s.cells.reserve(rows_ * (n_ / 2));
  const auto emit_row = [&](int level, PassKind pass, int stage) {
    const std::size_t row = row_index(level, pass, stage);
    const std::size_t d = std::size_t{1} << (stage - 1);
    const std::size_t j = static_cast<std::size_t>(stage);
    for (std::size_t sw = 0; sw < n_ / 2; ++sw) {
      // Invert stage_switch (topology/rbn_topology.hpp): re-insert the
      // deleted bit j-1 to recover the upper line of stage switch sw.
      const std::size_t up = ((sw >> (j - 1)) << j) | (sw & (d - 1));
      HeatmapCell cell;
      cell.level = level;
      cell.pass = pass;
      cell.stage = stage;
      cell.sw = sw;
      cell.active = cell_value(row, 0, up);
      cell.occupied = cell_value(row, 1, up);
      s.cells.push_back(cell);
    }
  };
  for (int k = 1; k <= m_ - 1; ++k) {
    for (int stage = 1; stage <= m_ - k + 1; ++stage) {
      emit_row(k, PassKind::Scatter, stage);
    }
    for (int stage = 1; stage <= m_ - k + 1; ++stage) {
      emit_row(k, PassKind::Quasisort, stage);
    }
  }
  emit_row(m_, PassKind::Final, 1);
  return s;
}

std::string to_json(const HeatmapSnapshot& s) {
  std::string out;
  out.reserve(64 + s.cells.size() * 24);
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "{\"type\":\"fabric_heatmap\",\"n\":%zu,\"m\":%d,"
                "\"routes\":%llu,\"cells\":[",
                s.n, s.m, static_cast<unsigned long long>(s.routes));
  out += buf;
  bool first = true;
  for (const HeatmapCell& c : s.cells) {
    if (c.active == 0 && c.occupied == 0) continue;
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof buf,
                  "{\"level\":%d,\"pass\":\"%s\",\"stage\":%d,\"sw\":%zu,"
                  "\"active\":%llu,\"occupied\":%llu}",
                  c.level, pass_label(c.pass), c.stage, c.sw,
                  static_cast<unsigned long long>(c.active),
                  static_cast<unsigned long long>(c.occupied));
    out += buf;
  }
  out += "]}";
  return out;
}

std::string to_csv(const HeatmapSnapshot& s) {
  std::string out = "level,pass,stage,sw,active,occupied\n";
  char buf[128];
  for (const HeatmapCell& c : s.cells) {
    std::snprintf(buf, sizeof buf, "%d,%s,%d,%zu,%llu,%llu\n", c.level,
                  pass_label(c.pass), c.stage, c.sw,
                  static_cast<unsigned long long>(c.active),
                  static_cast<unsigned long long>(c.occupied));
    out += buf;
  }
  return out;
}

std::string FabricHeatmap::to_json() const { return obs::to_json(snapshot()); }
std::string FabricHeatmap::to_csv() const { return obs::to_csv(snapshot()); }

}  // namespace brsmn::obs
