// Metric primitives for the observability layer: counters, gauges and
// histograms behind a thread-safe MetricRegistry.
//
// The paper's claims are quantitative (O(log^2 n) routing time, Table 2
// cost comparisons); RoutingStats charges *modelled* gate delays, but a
// production switch also needs *measured* wall-clock distributions per
// routing phase. The registry is the sink every engine records into; the
// exporters in obs/export.hpp turn a registry into JSON/CSV/tables.
//
// Concurrency: Counter is a relaxed atomic; Gauge an atomic double;
// Histogram serializes recording under a per-histogram mutex (the routing
// hot path records a handful of samples per assignment, so contention is
// negligible next to the routing work itself). Registry lookups take the
// registry mutex; hot paths should cache the returned references, which
// stay valid for the registry's lifetime.
//
// Compile-time kill switch: building with -DBRSMN_OBS=OFF (which defines
// BRSMN_OBS_DISABLED) turns obs::kEnabled into false; the engines guard
// every instrumentation hook with `if constexpr (obs::kEnabled)`, so a
// disabled build carries zero instrumentation cost on the hot path. The
// registry itself stays functional either way (exporters, tests).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace brsmn::obs {

#if defined(BRSMN_OBS_DISABLED)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (queue depth, imbalance, ...).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Streaming quantile estimator (Jain & Chlamtac's P^2 algorithm): O(1)
/// memory, no stored samples. Exact for the first five observations,
/// piecewise-parabolic interpolation afterwards.
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void observe(double x);
  double estimate() const;
  std::uint64_t count() const noexcept { return count_; }

 private:
  double q_;
  std::array<double, 5> heights_{};    // marker heights (q[i])
  std::array<double, 5> positions_{};  // actual marker positions (n[i])
  std::array<double, 5> desired_{};    // desired marker positions (n'[i])
  std::array<double, 5> increments_{};  // dn'[i] per observation
  std::uint64_t count_ = 0;
};

/// Point-in-time copy of a histogram, safe to read without locks.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;  ///< streaming P^2 estimate
  double p99 = 0.0;  ///< streaming P^2 estimate
  /// Power-of-two buckets: buckets[0] counts values < 1, buckets[i]
  /// (i >= 1) counts values in [2^(i-1), 2^i). Trailing empty buckets
  /// are trimmed.
  std::vector<std::uint64_t> buckets;

  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// Quantile estimate from the fixed buckets alone (linear interpolation
  /// inside the bucket that crosses q). Coarser than p50/p99 but
  /// mergeable across processes.
  double bucket_quantile(double q) const;
};

/// Fixed-bucket (power-of-two) histogram with streaming p50/p99.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(double value);
  std::uint64_t count() const;
  HistogramSnapshot snapshot() const;

  /// snapshot() into caller-owned storage: `out.buckets` is resized in
  /// place, so once it has seen the histogram's widest extent the call
  /// allocates nothing (the telemetry sampler's per-tick path).
  void snapshot_into(HistogramSnapshot& out) const;

  /// Forget every recorded sample (count, extremes, buckets, quantile
  /// state); the histogram is as freshly constructed.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::array<std::uint64_t, kBuckets> buckets_{};
  P2Quantile p50_{0.5};
  P2Quantile p99_{0.99};
};

/// Everything a registry holds, copied out under one lock; the exporters
/// and tests consume this rather than the live registry.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// Named metric store. Instruments are created on first use and live as
/// long as the registry; returned references are stable and safe to cache
/// across threads.
class MetricRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Copies of every instrument, each name list sorted.
  RegistrySnapshot snapshot() const;

  /// snapshot() into caller-owned storage, reusing its capacity: the name
  /// strings, instrument vectors and histogram buckets of `out` are
  /// assigned in place, so a snapshot taken repeatedly into the same
  /// object (the telemetry sampler's ring slots) performs zero heap
  /// allocations once the instrument set has stabilized — asserted by the
  /// sampler soak test.
  void snapshot_into(RegistrySnapshot& out) const;

  /// Zero every counter and gauge and clear every histogram while keeping
  /// all registrations: references handed out earlier stay valid, so a
  /// long-lived switch can report per-window metrics without re-resolving
  /// its probes.
  void reset();

  /// reset() restricted to the family `prefix`: the instrument named
  /// exactly `prefix` plus every "<prefix>.<...>" instrument — a sibling
  /// family that merely shares the spelling (reset("route") vs "routes")
  /// is untouched. Benchmarks that register several metric families in
  /// one registry reset just the family a repetition is about to
  /// measure, so stale counts from a previously-run family cannot leak
  /// into exported baselines.
  void reset(std::string_view prefix);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace brsmn::obs
