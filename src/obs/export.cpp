#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string_view>

#include "common/contracts.hpp"

namespace brsmn::obs {

namespace {

/// Shortest representation that round-trips a double; JSON has no
/// Infinity/NaN, so those clamp to null-safe extremes (never produced by
/// the instruments, but the exporter must not emit invalid JSON).
std::string number(double v) {
  if (std::isnan(v)) return "0";
  if (std::isinf(v)) return v > 0 ? "1e308" : "-1e308";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string quoted(std::string_view name) {
  std::string out = "\"";
  for (const char c : name) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

void histogram_json(std::ostringstream& os, const HistogramSnapshot& h) {
  os << "{\"count\": " << h.count << ", \"sum\": " << number(h.sum)
     << ", \"min\": " << number(h.min) << ", \"max\": " << number(h.max)
     << ", \"mean\": " << number(h.mean()) << ", \"p50\": " << number(h.p50)
     << ", \"p99\": " << number(h.p99) << ", \"buckets\": [";
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    if (i != 0) os << ", ";
    os << h.buckets[i];
  }
  os << "]}";
}

}  // namespace

std::string to_json(const RegistrySnapshot& snapshot) {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    "
       << quoted(snapshot.counters[i].first) << ": "
       << snapshot.counters[i].second;
  }
  os << (snapshot.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    " << quoted(snapshot.gauges[i].first)
       << ": " << number(snapshot.gauges[i].second);
  }
  os << (snapshot.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    "
       << quoted(snapshot.histograms[i].first) << ": ";
    histogram_json(os, snapshot.histograms[i].second);
  }
  os << (snapshot.histograms.empty() ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

std::string to_csv(const RegistrySnapshot& snapshot) {
  std::ostringstream os;
  os << "kind,name,count,sum,min,max,mean,p50,p99\n";
  for (const auto& [name, value] : snapshot.counters) {
    os << "counter," << name << ',' << value << ",,,,,,\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    os << "gauge," << name << ',' << number(value) << ",,,,,,\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    os << "histogram," << name << ',' << h.count << ',' << number(h.sum) << ','
       << number(h.min) << ',' << number(h.max) << ',' << number(h.mean())
       << ',' << number(h.p50) << ',' << number(h.p99) << '\n';
  }
  return os.str();
}

std::string to_table(const RegistrySnapshot& snapshot) {
  std::ostringstream os;
  char line[256];
  if (!snapshot.counters.empty()) {
    os << "counters:\n";
    for (const auto& [name, value] : snapshot.counters) {
      std::snprintf(line, sizeof(line), "  %-40s %16llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      os << line;
    }
  }
  if (!snapshot.gauges.empty()) {
    os << "gauges:\n";
    for (const auto& [name, value] : snapshot.gauges) {
      std::snprintf(line, sizeof(line), "  %-40s %16.3f\n", name.c_str(),
                    value);
      os << line;
    }
  }
  if (!snapshot.histograms.empty()) {
    os << "histograms:\n";
    std::snprintf(line, sizeof(line), "  %-40s %10s %12s %12s %12s %12s\n",
                  "name", "count", "mean", "p50", "p99", "max");
    os << line;
    for (const auto& [name, h] : snapshot.histograms) {
      std::snprintf(line, sizeof(line),
                    "  %-40s %10llu %12.1f %12.1f %12.1f %12.1f\n",
                    name.c_str(), static_cast<unsigned long long>(h.count),
                    h.mean(), h.p50, h.p99, h.max);
      os << line;
    }
  }
  return os.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  BRSMN_EXPECTS_MSG(out.good(), "cannot open file for writing: " + path);
  out << content;
  out.flush();
  BRSMN_EXPECTS_MSG(out.good(), "failed writing file: " + path);
}

bool try_write_metrics(const std::string& path, const MetricRegistry& r) {
  if (path.empty()) {
    std::fprintf(stderr, "error: --metrics-out requires a non-empty path\n");
    return false;
  }
  const std::string content = to_json(r);
  if (path == "-") {
    std::fwrite(content.data(), 1, content.size(), stdout);
    return std::fflush(stdout) == 0;
  }
  try {
    write_file(path, content);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: cannot write metrics: %s\n", e.what());
    return false;
  }
  return true;
}

std::optional<std::string> consume_value_flag(int& argc, char** argv,
                                              std::string_view flag) {
  std::optional<std::string> value;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind(flag, 0) == 0) {
      value = std::string(arg.substr(flag.size()));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return value;
}

std::optional<std::string> consume_metrics_out_flag(int& argc, char** argv) {
  return consume_value_flag(argc, argv, "--metrics-out=");
}

std::optional<std::string> consume_trace_out_flag(int& argc, char** argv) {
  return consume_value_flag(argc, argv, "--trace-out=");
}

bool stdout_claims_exclusive(
    std::initializer_list<std::pair<std::string_view,
                                    const std::optional<std::string>*>>
        streams) {
  std::string claimants;
  int count = 0;
  for (const auto& [flag, path] : streams) {
    if (!claims_stdout(*path)) continue;
    ++count;
    if (!claimants.empty()) claimants += ", ";
    claimants += flag;
  }
  if (count <= 1) return true;
  std::fprintf(stderr,
               "error: %s all claim stdout ('-'); at most one stream may "
               "write to stdout — give the others file paths\n",
               claimants.c_str());
  return false;
}

}  // namespace brsmn::obs
