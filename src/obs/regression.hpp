// Perf-regression comparison over metric dumps (obs/export.hpp JSON).
//
// The CI loop: bench_routing_time --metrics-out=now.json produces a
// registry snapshot; diff_metrics compares selected statistics against a
// checked-in baseline with a relative threshold. tools/bench_diff is the
// thin CLI over this header so the gate logic itself is unit-testable
// (including the injected-slowdown fixtures).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace brsmn::obs {

/// One gated statistic. `metric` names a histogram (stat in {count, sum,
/// min, max, mean, p50, p99}) or, with stat empty, a counter or gauge.
/// `max_regression` is the tolerated relative increase: 0.25 passes any
/// current value up to 1.25x the baseline. Negative thresholds (> -1.0)
/// mandate an improvement: -0.3 fails any current value above 0.7x the
/// baseline — the shape of a CI gate that pins an optimization against
/// the pre-change cost. Lower-is-worse metrics are out of scope — every
/// gated statistic here is a cost (time, traversals).
///
/// A metric of the form "A/B" is a ratio check: A and B are resolved
/// separately in each document (both with `stat` when given) and the
/// gated value is A/B — e.g. "plan_cache.hits/plan_cache.misses" or
/// "warm.route.phase.replay_ns/cold.route.phase.total_ns:p50". A zero
/// denominator yields +inf when the numerator is nonzero and 0 when both
/// are zero, so a degenerate baseline cannot silently pass.
struct RegressionCheck {
  std::string metric;
  std::string stat;
  double max_regression = 0.25;
};

/// Parse "metric", "metric:stat" or "metric:stat@threshold" (threshold a
/// relative fraction, e.g. 0.25). Throws ContractViolation on a malformed
/// selector; `default_threshold` fills in when no @threshold is given.
RegressionCheck parse_check(const std::string& selector,
                            double default_threshold);

/// The comparison of one checked statistic.
struct RegressionOutcome {
  RegressionCheck check;
  double baseline = 0.0;
  double current = 0.0;
  /// Relative change (current - baseline) / baseline; +inf when the
  /// baseline is 0 and the current value is not.
  double change = 0.0;
  bool regressed = false;
  /// The statistic was absent from one of the two documents (reported as
  /// its own failure mode so a renamed metric cannot silently pass).
  bool missing = false;
};

struct RegressionReport {
  std::vector<RegressionOutcome> outcomes;

  bool any_regressed() const;
  bool any_missing() const;
};

/// Compare `current` against `baseline` (both parsed obs/export.hpp metric
/// documents) on the given checks.
RegressionReport diff_metrics(const JsonValue& baseline,
                              const JsonValue& current,
                              std::span<const RegressionCheck> checks);

/// Human-readable report table (one outcome per line, render-style).
std::string to_table(const RegressionReport& report);

}  // namespace brsmn::obs
