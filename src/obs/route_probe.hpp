// Pre-resolved metric handles for the routing engines.
//
// Brsmn / FeedbackBrsmn / Bsn time four phases per routed assignment —
// mirroring the gate-delay composition of core/stats.hpp:
//   <prefix>.phase.scatter_ns    scatter configuration sweeps (Theorem 2)
//   <prefix>.phase.eps_divide_ns ε-dividing sweeps (Table 6)
//   <prefix>.phase.quasisort_ns  quasisort configuration sweeps (Lemma 1)
//   <prefix>.phase.datapath_ns   fabric traversals + final 2x2 delivery
//   <prefix>.phase.total_ns      the whole route() call
// and mirror RoutingStats into counters (<prefix>.switch_traversals, ...)
// so concurrent workers aggregate into one registry.
//
// The probe is resolved once per route() (five registry lookups) and then
// passed by pointer through the level/BSN machinery, keeping the per-phase
// cost to a PhaseTimer scope.
#pragma once

#include <string>
#include <string_view>

#include "core/stats.hpp"
#include "obs/metrics.hpp"

namespace brsmn::obs {

class Tracer;
class PhaseProfiler;

struct RouteProbe {
  MetricRegistry* registry = nullptr;
  std::string prefix;
  Histogram* scatter = nullptr;
  Histogram* eps_divide = nullptr;
  Histogram* quasisort = nullptr;
  Histogram* datapath = nullptr;
  Histogram* total = nullptr;
  /// Event tracer for per-phase spans; set by the engines from
  /// RouteOptions::tracer, independent of the registry (either may be
  /// attached without the other).
  Tracer* tracer = nullptr;
  /// Hardware perf-counter profiler (obs/perf_counters.hpp); set via
  /// attach_profiler from RouteOptions::profiler, independent of the
  /// registry and tracer. The perf_* ids below index its phases — the
  /// same names the phase histograms use, resolved once per route.
  PhaseProfiler* profiler = nullptr;
  std::size_t perf_scatter = 0;
  std::size_t perf_eps_divide = 0;
  std::size_t perf_quasisort = 0;
  std::size_t perf_datapath = 0;
  std::size_t perf_total = 0;
  std::size_t perf_replay = 0;

  bool enabled() const noexcept { return registry != nullptr; }
  bool tracing() const noexcept { return tracer != nullptr; }

  /// Resolve the phase histograms of `prefix` in `registry`.
  static RouteProbe attach(MetricRegistry& registry,
                           std::string_view prefix = "route");

  /// Resolve the phase ids of `p` (no-op on null / unavailable).
  void attach_profiler(PhaseProfiler* p);

  /// Mirror one route's RoutingStats into <prefix>.* counters and bump
  /// <prefix>.routes.
  void record_stats(const RoutingStats& stats) const;
};

}  // namespace brsmn::obs
