#include "obs/tracer.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/contracts.hpp"

namespace brsmn::obs {

namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 16;
  while (p < v) p <<= 1;
  return p;
}

std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

std::string_view trace_phase(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::Begin: return "B";
    case TraceEventKind::End: return "E";
    case TraceEventKind::Instant: return "i";
    case TraceEventKind::Counter: return "C";
  }
  return "?";
}

/// One ring slot. Written only by the owning thread; published by the
/// buffer's head store, so readers that honor head never see a slot
/// mid-write (collect() additionally requires writer quiescence, since a
/// wrapped ring reuses old slots).
struct TracerSlot {
  TraceEventKind kind;
  char name[Tracer::kMaxNameLength + 1];
  std::int64_t ts_ns;
  double value;
};

struct Tracer::ThreadBuffer {
  std::uint32_t tid = 0;
  std::thread::id owner;
  std::size_t capacity = 0;           // power of two
  std::atomic<std::uint64_t> head{0};  // events ever pushed
  std::vector<TracerSlot> slots;

  void push(TraceEventKind kind, std::string_view name, std::int64_t ts_ns,
            double value) noexcept {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    TracerSlot& slot = slots[static_cast<std::size_t>(h & (capacity - 1))];
    slot.kind = kind;
    const std::size_t len = std::min(name.size(), kMaxNameLength);
    std::memcpy(slot.name, name.data(), len);
    slot.name[len] = '\0';
    slot.ts_ns = ts_ns;
    slot.value = value;
    head.store(h + 1, std::memory_order_release);
  }
};

Tracer::Tracer(std::size_t events_per_thread)
    : id_(next_tracer_id()),
      capacity_(round_up_pow2(events_per_thread)),
      t0_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() = default;

Tracer::ThreadBuffer& Tracer::local_buffer() {
  // Single-entry per-thread cache of the last tracer recorded into, keyed
  // by the tracer's process-unique id so a destroyed tracer's address
  // being reused can never resurrect a stale buffer pointer.
  thread_local std::uint64_t cached_id = 0;
  thread_local ThreadBuffer* cached_buffer = nullptr;
  if (cached_id == id_) return *cached_buffer;
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::thread::id self = std::this_thread::get_id();
  ThreadBuffer* ref = nullptr;
  for (const auto& existing : buffers_) {
    if (existing->owner == self) {
      ref = existing.get();
      break;
    }
  }
  if (ref == nullptr) {
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->tid = static_cast<std::uint32_t>(buffers_.size());
    buffer->owner = self;
    buffer->capacity = capacity_;
    buffer->slots.resize(capacity_);
    ref = buffer.get();
    buffers_.push_back(std::move(buffer));
  }
  cached_id = id_;
  cached_buffer = ref;
  return *ref;
}

void Tracer::record(TraceEventKind kind, std::string_view name,
                    double value) noexcept {
  const auto ts =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0_)
          .count();
  local_buffer().push(kind, name, ts, value);
}

void Tracer::begin(std::string_view name) noexcept {
  record(TraceEventKind::Begin, name, 0.0);
}

void Tracer::end(std::string_view name) noexcept {
  record(TraceEventKind::End, name, 0.0);
}

void Tracer::instant(std::string_view name) noexcept {
  record(TraceEventKind::Instant, name, 0.0);
}

void Tracer::counter(std::string_view name, double value) noexcept {
  record(TraceEventKind::Counter, name, value);
}

std::size_t Tracer::thread_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return buffers_.size();
}

std::uint64_t Tracer::dropped_events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t dropped = 0;
  for (const auto& buffer : buffers_) {
    const std::uint64_t pushed = buffer->head.load(std::memory_order_acquire);
    if (pushed > buffer->capacity) dropped += pushed - buffer->capacity;
  }
  return dropped;
}

std::vector<CollectedEvent> Tracer::collect() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CollectedEvent> events;
  for (const auto& buffer : buffers_) {
    const std::uint64_t pushed = buffer->head.load(std::memory_order_acquire);
    const std::uint64_t first =
        pushed > buffer->capacity ? pushed - buffer->capacity : 0;
    for (std::uint64_t i = first; i < pushed; ++i) {
      const TracerSlot& slot =
          buffer->slots[static_cast<std::size_t>(i & (buffer->capacity - 1))];
      CollectedEvent ev;
      ev.kind = slot.kind;
      ev.name = slot.name;
      ev.tid = buffer->tid;
      ev.ts_ns = slot.ts_ns;
      ev.value = slot.value;
      events.push_back(std::move(ev));
    }
  }
  // Stable: events of one thread were appended in recording order, so
  // equal timestamps keep their per-lane causal order.
  std::stable_sort(events.begin(), events.end(),
                   [](const CollectedEvent& a, const CollectedEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return events;
}

namespace {

std::string escaped(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void append_event(std::ostringstream& os, bool& first,
                  const CollectedEvent& ev) {
  char ts[32];
  std::snprintf(ts, sizeof(ts), "%.3f",
                static_cast<double>(ev.ts_ns) / 1000.0);
  os << (first ? "\n" : ",\n") << "    {\"name\": \"" << escaped(ev.name)
     << "\", \"cat\": \"brsmn\", \"ph\": \"" << trace_phase(ev.kind)
     << "\", \"ts\": " << ts << ", \"pid\": 1, \"tid\": " << ev.tid;
  if (ev.kind == TraceEventKind::Instant) os << ", \"s\": \"t\"";
  if (ev.kind == TraceEventKind::Counter) {
    char value[32];
    std::snprintf(value, sizeof(value), "%.17g", ev.value);
    os << ", \"args\": {\"value\": " << value << "}";
  }
  os << "}";
  first = false;
}

}  // namespace

std::string export_chrome_trace(std::span<const CollectedEvent> events) {
  // Flight-recorder repair, per lane: an End whose Begin was evicted by
  // the ring is dropped, and Begins still open at the end of the window
  // are closed (innermost first) at the final timestamp, so every lane
  // carries balanced, properly nested B/E pairs.
  std::vector<std::vector<const CollectedEvent*>> open_spans;
  std::int64_t last_ts = 0;
  std::ostringstream os;
  os << "{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [";
  bool first = true;
  for (const CollectedEvent& ev : events) {
    last_ts = std::max(last_ts, ev.ts_ns);
    if (ev.tid >= open_spans.size()) open_spans.resize(ev.tid + 1);
    auto& stack = open_spans[ev.tid];
    if (ev.kind == TraceEventKind::End) {
      if (stack.empty()) continue;  // Begin evicted: orphaned End
      stack.pop_back();
    } else if (ev.kind == TraceEventKind::Begin) {
      stack.push_back(&ev);
    }
    append_event(os, first, ev);
  }
  for (const auto& stack : open_spans) {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      CollectedEvent close = **it;
      close.kind = TraceEventKind::End;
      close.ts_ns = last_ts;
      append_event(os, first, close);
    }
  }
  os << (first ? "" : "\n  ") << "]\n}\n";
  return os.str();
}

std::string export_chrome_trace(const Tracer& tracer) {
  const std::vector<CollectedEvent> events = tracer.collect();
  return export_chrome_trace(events);
}

bool try_write_trace(const std::string& path, const Tracer& tracer) {
  if (path.empty()) {
    std::fprintf(stderr, "error: --trace-out requires a non-empty path\n");
    return false;
  }
  const std::string content = export_chrome_trace(tracer);
  if (path == "-") {
    std::fwrite(content.data(), 1, content.size(), stdout);
    return std::fflush(stdout) == 0;
  }
  try {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    BRSMN_EXPECTS_MSG(out.good(), "cannot open file for writing: " + path);
    out << content;
    out.flush();
    BRSMN_EXPECTS_MSG(out.good(), "failed writing file: " + path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: cannot write trace: %s\n", e.what());
    return false;
  }
  return true;
}

}  // namespace brsmn::obs
