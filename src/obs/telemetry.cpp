#include "obs/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string_view>

#include "common/contracts.hpp"
#include "obs/export.hpp"
#include "obs/fabric_heatmap.hpp"

namespace brsmn::obs {

namespace {

std::string number(double v) {
  if (std::isnan(v)) return "0";
  if (std::isinf(v)) return v > 0 ? "1e308" : "-1e308";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

/// Value of `name` in a name-sorted (name, value) vector; fallback when
/// absent. The registry snapshot is map-ordered, so binary search works.
template <typename V>
std::optional<V> lookup(const std::vector<std::pair<std::string, V>>& items,
                        const std::string& name) {
  if (name.empty()) return std::nullopt;
  const auto it = std::lower_bound(
      items.begin(), items.end(), name,
      [](const auto& entry, const std::string& key) { return entry.first < key; });
  if (it == items.end() || it->first != name) return std::nullopt;
  return it->second;
}

std::uint64_t counter_delta(const RegistrySnapshot& prev,
                            const RegistrySnapshot& cur,
                            const std::string& name) {
  const auto now = lookup(cur.counters, name);
  if (!now) return 0;
  const auto before = lookup(prev.counters, name).value_or(0);
  return *now >= before ? *now - before : 0;
}

/// Single-line rendering of the obs/export.hpp JSON shape, embeddable as
/// the rollup line's "metrics" value (the pretty exporter is multi-line,
/// which JSONL cannot carry).
std::string compact_metrics_json(const RegistrySnapshot& s) {
  std::string out = "{\"counters\":{";
  for (std::size_t i = 0; i < s.counters.size(); ++i) {
    if (i != 0) out += ',';
    append_quoted(out, s.counters[i].first);
    out += ':';
    out += std::to_string(s.counters[i].second);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < s.gauges.size(); ++i) {
    if (i != 0) out += ',';
    append_quoted(out, s.gauges[i].first);
    out += ':';
    out += number(s.gauges[i].second);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < s.histograms.size(); ++i) {
    const auto& h = s.histograms[i].second;
    if (i != 0) out += ',';
    append_quoted(out, s.histograms[i].first);
    out += ":{\"count\":" + std::to_string(h.count);
    out += ",\"sum\":" + number(h.sum);
    out += ",\"min\":" + number(h.min);
    out += ",\"max\":" + number(h.max);
    out += ",\"mean\":" + number(h.mean());
    out += ",\"p50\":" + number(h.p50);
    out += ",\"p99\":" + number(h.p99);
    out += ",\"buckets\":[";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b != 0) out += ',';
      out += std::to_string(h.buckets[b]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace

TelemetrySampler::TelemetrySampler(MetricRegistry& registry,
                                   TelemetryConfig config)
    : registry_(registry),
      config_(std::move(config)),
      epoch_(std::chrono::steady_clock::now()) {
  BRSMN_EXPECTS(config_.capacity >= 1);
  slots_.resize(config_.capacity);
}

TelemetrySampler::~TelemetrySampler() { stop(); }

void TelemetrySampler::sample_locked() {
  TelemetrySample& slot = slots_[taken_ % slots_.size()];
  const double t_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_)
          .count();
  slot.seq = taken_;
  slot.t_s = t_s;
  slot.dt_s = taken_ == 0 ? t_s : t_s - last_t_s_;
  last_t_s_ = t_s;
  registry_.snapshot_into(slot.cum);
  ++taken_;
}

void TelemetrySampler::sample_now() {
  const std::lock_guard<std::mutex> lock(mutex_);
  sample_locked();
}

void TelemetrySampler::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    cv_.wait_for(lock, config_.interval, [this] { return stop_requested_; });
    if (stop_requested_) break;
    sample_locked();
  }
}

void TelemetrySampler::start() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  worker_ = std::thread([this] { run(); });
}

void TelemetrySampler::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
    sample_locked();  // closing data point, even for very short runs
  }
  cv_.notify_all();
  worker_.join();
  const std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
}

std::uint64_t TelemetrySampler::samples() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return taken_;
}

std::uint64_t TelemetrySampler::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return taken_ > slots_.size() ? taken_ - slots_.size() : 0;
}

void TelemetrySampler::set_heatmap(const FabricHeatmap* map) {
  const std::lock_guard<std::mutex> lock(mutex_);
  heatmap_ = map;
}

std::vector<TelemetrySample> TelemetrySampler::series() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TelemetrySample> out;
  const std::uint64_t retained =
      std::min<std::uint64_t>(taken_, slots_.size());
  out.reserve(retained);
  for (std::uint64_t seq = taken_ - retained; seq < taken_; ++seq) {
    out.push_back(slots_[seq % slots_.size()]);
  }
  return out;
}

std::string TelemetrySampler::to_jsonl() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  {
    out += "{\"type\":\"telemetry_header\",\"version\":1,\"source\":";
    append_quoted(out, config_.source);
    out += ",\"interval_ms\":" + std::to_string(config_.interval.count());
    out += ",\"capacity\":" + std::to_string(slots_.size());
    out += "}\n";
  }
  const std::uint64_t retained =
      std::min<std::uint64_t>(taken_, slots_.size());
  const RegistrySnapshot* prev = nullptr;
  static const RegistrySnapshot kEmpty;
  double duration_s = 0.0;
  for (std::uint64_t seq = taken_ - retained; seq < taken_; ++seq) {
    const TelemetrySample& s = slots_[seq % slots_.size()];
    const RegistrySnapshot& before = prev != nullptr ? *prev : kEmpty;
    duration_s = s.t_s;
    out += "{\"type\":\"sample\",\"seq\":" + std::to_string(s.seq);
    out += ",\"t_s\":" + number(s.t_s);
    out += ",\"dt_s\":" + number(s.dt_s);
    out += ",\"counters\":{";
    // Merge-join the two name-sorted counter lists for the deltas; only
    // counters that moved this interval are emitted.
    bool first = true;
    std::size_t bi = 0;
    for (const auto& [name, value] : s.cum.counters) {
      while (bi < before.counters.size() && before.counters[bi].first < name) {
        ++bi;
      }
      std::uint64_t base = 0;
      if (bi < before.counters.size() && before.counters[bi].first == name) {
        base = before.counters[bi].second;
      }
      if (value <= base) continue;
      if (!first) out += ',';
      first = false;
      append_quoted(out, name);
      out += ':' + std::to_string(value - base);
    }
    out += "},\"gauges\":{";
    for (std::size_t i = 0; i < s.cum.gauges.size(); ++i) {
      if (i != 0) out += ',';
      append_quoted(out, s.cum.gauges[i].first);
      out += ':';
      out += number(s.cum.gauges[i].second);
    }
    out += "},\"derived\":{";
    first = true;
    const auto emit = [&](std::string_view key, double v) {
      if (!first) out += ',';
      first = false;
      out += '"';
      out += key;
      out += "\":";
      out += number(v);
    };
    const double dt = s.dt_s > 0.0 ? s.dt_s : 1.0;
    if (!config_.routes_counter.empty()) {
      emit("routes_per_sec",
           static_cast<double>(
               counter_delta(before, s.cum, config_.routes_counter)) /
               dt);
    }
    if (!config_.hits_counter.empty() || !config_.misses_counter.empty()) {
      const auto hits = static_cast<double>(
          counter_delta(before, s.cum, config_.hits_counter));
      const auto misses = static_cast<double>(
          counter_delta(before, s.cum, config_.misses_counter));
      emit("plan_cache_hit_rate",
           hits + misses > 0.0 ? hits / (hits + misses) : 0.0);
    }
    if (!config_.patched_counter.empty()) {
      const auto patched = static_cast<double>(
          counter_delta(before, s.cum, config_.patched_counter));
      const auto base = static_cast<double>(
          counter_delta(before, s.cum, config_.patch_base_counter));
      emit("patch_ratio", base > 0.0 ? patched / base : 0.0);
    }
    if (!config_.detected_counter.empty()) {
      emit("fault_detected_rate",
           static_cast<double>(
               counter_delta(before, s.cum, config_.detected_counter)) /
               dt);
    }
    if (!config_.degraded_counter.empty()) {
      const auto degraded = static_cast<double>(
          counter_delta(before, s.cum, config_.degraded_counter));
      const auto base = static_cast<double>(
          counter_delta(before, s.cum, config_.degraded_base_counter));
      emit("degraded_ratio", base > 0.0 ? degraded / base : 0.0);
    }
    if (!config_.backlog_gauge.empty()) {
      emit("backlog_depth",
           lookup(s.cum.gauges, config_.backlog_gauge).value_or(0.0));
    }
    out += "}}\n";
    prev = &s.cum;
  }
  if (heatmap_ != nullptr) {
    out += obs::to_json(heatmap_->snapshot());
    out += '\n';
  }
  out += "{\"type\":\"rollup\",\"samples\":" + std::to_string(taken_);
  out += ",\"dropped\":" +
         std::to_string(taken_ > slots_.size() ? taken_ - slots_.size() : 0);
  out += ",\"duration_s\":" + number(duration_s);
  out += ",\"metrics\":";
  out += compact_metrics_json(prev != nullptr ? *prev : kEmpty);
  out += "}\n";
  return out;
}

bool TelemetrySampler::write(const std::string& path) const {
  if (path.empty()) {
    std::fprintf(stderr, "error: --telemetry-out requires a non-empty path\n");
    return false;
  }
  const std::string content = to_jsonl();
  if (path == "-") {
    std::fwrite(content.data(), 1, content.size(), stdout);
    return std::fflush(stdout) == 0;
  }
  try {
    write_file(path, content);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: cannot write telemetry: %s\n", e.what());
    return false;
  }
  return true;
}

std::optional<std::string> consume_telemetry_out_flag(int& argc, char** argv) {
  return consume_value_flag(argc, argv, "--telemetry-out=");
}

}  // namespace brsmn::obs
