// Fabric utilization heatmaps: per-(level, pass, stage) switch-activity
// and line-occupancy accumulation planes.
//
// The ROADMAP's dynamic-partition-merging and wormhole directions both
// gate on *where* in the fabric traffic concentrates, not just how long a
// route takes. A FabricHeatmap accumulates, per routed assignment and per
// switch coordinate of the explain grid (core/explain.hpp — level k,
// pass in {Scatter, Quasisort, Final}, stage j, switch s):
//   active[s]   += 1 when either input line of the switch is occupied
//   occupied[s] += the number of occupied input lines (0..2)
// sampled at *stage entry*, so all four drivers (scalar/packed x
// unrolled/feedback) observe the exact same line state and produce
// bit-identical heatmaps (tests/test_packed_differential.cpp).
//
// Cost model: the packed drivers feed the heatmap straight from their
// existing tag planes — an occupied line is any line outside the ε family
// (tag bits t0 & t1 == 0, core/tag.hpp), so one record is ~3 word ops per
// 64 lines plus a vertical-counter add. The counters are bit-sliced
// (8 carry-propagate bit-planes per counter, overflow spilled into wide
// per-line words), so the steady-state cost of a record is a handful of
// XOR/AND per word and the hot path allocates nothing. The scalar drivers
// pay one occupancy-scan per stage into a preallocated scratch plane.
//
// Concurrency: a FabricHeatmap is single-owner — exactly one routing
// thread records into an instance (the planes are plain words, not
// atomics, to keep the datapath cheap). Concurrent routers give each
// worker its own map and combine them with merge(); snapshot()/export are
// safe only after recording has quiesced. This is the same ownership
// discipline the replay workspace uses, and what keeps the planes
// TSan-clean.
//
// Off by default: routes record only when RouteOptions::heatmap is set,
// and builds with BRSMN_OBS_DISABLED compile the hooks out entirely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/explain.hpp"
#include "core/line_value.hpp"

namespace brsmn::obs {

/// One exported switch coordinate with its accumulated counts.
struct HeatmapCell {
  int level = 0;          ///< 1..m-1 for BSN rows, m for the final level
  PassKind pass = PassKind::Scatter;
  int stage = 0;          ///< 1-based within the pass
  std::size_t sw = 0;     ///< stage switch index (block-major, explain order)
  std::uint64_t active = 0;    ///< routes with >= 1 occupied input here
  std::uint64_t occupied = 0;  ///< total occupied input lines (0..2 / route)
};

/// Flushed copy of a heatmap, safe to read and serialize.
struct HeatmapSnapshot {
  std::size_t n = 0;
  int m = 0;               ///< log2(n)
  std::uint64_t routes = 0;  ///< full-plane records of the level-1 scatter row
  std::vector<HeatmapCell> cells;  ///< row-major: (level, pass, stage, sw)
};

class FabricHeatmap {
 public:
  /// A heatmap for an n x n BRSMN (n a power of two >= 4): one row per
  /// (level 1..m-1) x (scatter, quasisort) x (stage 1..m-k+1) plus the
  /// final 2x2 level — m(m+1) - 1 rows of n/2 switch slots each. All
  /// planes are allocated here; recording never allocates.
  explicit FabricHeatmap(std::size_t n);

  std::size_t size() const noexcept { return n_; }
  int levels() const noexcept { return m_; }

  /// Record one stage entry from packed tag planes (t0/t1 =
  /// Table 1 bit-planes 0 and 1): a line is occupied iff it is outside
  /// the ε family, i.e. ~(t0 & t1). Spans must cover words_for(n) words;
  /// bits above n are ignored. `pass == Final` ignores `level`.
  void record_stage_tags(int level, PassKind pass, int stage,
                         std::span<const std::uint64_t> t0,
                         std::span<const std::uint64_t> t1);

  /// Record one stage entry from scalar line state. `lines` may be a
  /// block slice starting at network line `line_offset` (the scalar
  /// unrolled driver routes each BSN block separately); partial records
  /// from all blocks of a stage sum to the same counts as one full-plane
  /// record. `line_offset` must be a multiple of lines.size().
  void record_lines(int level, PassKind pass, int stage,
                    const std::vector<LineValue>& lines,
                    std::size_t line_offset = 0);

  /// Record the final 2x2-switch level (stage 1, pairs (2j, 2j+1)).
  void record_final_lines(const std::vector<LineValue>& lines);
  void record_final_tags(std::span<const std::uint64_t> t0,
                         std::span<const std::uint64_t> t1);

  /// Fold another map's counts into this one (same n). The other map may
  /// be recorded by a different thread as long as it has quiesced.
  void merge(const FabricHeatmap& other);

  /// Zero every counter (capacity retained).
  void reset();

  /// Number of full-plane records of the level-1 scatter stage-1 row —
  /// i.e. routed assignments observed (each route records that row once).
  std::uint64_t routes() const;

  HeatmapSnapshot snapshot() const;

  /// JSON: {"type":"fabric_heatmap","n":..,"m":..,"routes":..,
  ///        "cells":[{"level":..,"pass":"scatter","stage":..,"sw":..,
  ///                  "active":..,"occupied":..}, ...]} — cells with zero
  /// counts are elided. Stable row-major order.
  std::string to_json() const;

  /// CSV: header `level,pass,stage,sw,active,occupied`, one line per
  /// switch slot (zero cells included, so grids are rectangular).
  std::string to_csv() const;

 private:
  std::size_t row_index(int level, PassKind pass, int stage) const;
  void accumulate(std::size_t row, int stage, std::size_t word_lo,
                  std::size_t word_hi, const std::uint64_t* occ);
  void add_word(std::size_t row, int counter, std::size_t w,
                std::uint64_t mask);
  std::uint64_t cell_value(std::size_t row, int counter,
                           std::size_t line) const;

  static constexpr std::size_t kBitPlanes = 8;  ///< sliced counter depth

  std::size_t n_ = 0;
  int m_ = 0;
  std::size_t words_ = 0;   ///< words per plane
  std::size_t rows_ = 0;    ///< m(m+1) - 1
  std::vector<std::size_t> level_row_base_;  ///< first row of level k
  std::uint64_t tail_mask_ = ~std::uint64_t{0};  ///< valid bits, last word
  /// rows x 2 counters x kBitPlanes planes x words_ words. Counter 0 is
  /// `active`, counter 1 is `occupied`; bits sit at upper-line positions.
  std::vector<std::uint64_t> planes_;
  /// Overflow accumulators: rows x 2 counters x (words_ * 64) lines.
  std::vector<std::uint64_t> wide_;
  /// Full-plane records per row (partial block records count via the
  /// offset-0 block only, so this is routes-observed for every row).
  std::vector<std::uint64_t> samples_;
  /// Occupancy scratch for the scalar record path.
  std::vector<std::uint64_t> scratch_;
};

/// Serializers over a flushed snapshot (the member functions forward
/// here); the JSON line is what TelemetrySampler embeds in its JSONL.
std::string to_json(const HeatmapSnapshot& s);
std::string to_csv(const HeatmapSnapshot& s);

}  // namespace brsmn::obs
