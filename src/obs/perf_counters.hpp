// Hardware performance-counter phase profiling via perf_event_open.
//
// PhaseTimer (obs/phase_timer.hpp) answers "how long did each routing
// phase take"; the SIMD-kernel direction on the ROADMAP needs "where do
// the cycles go" — IPC and cache/branch miss rates per phase, so a wider
// datapath can be judged against the actual bottleneck. PerfCounterGroup
// opens one grouped perf event set (cycles leader + instructions,
// cache-misses, branch-misses, read atomically in a single syscall with
// TOTAL_TIME_ENABLED/RUNNING scaling for multiplexed counters), and
// PhaseProfiler accumulates per-phase deltas through the RAII PerfScope —
// placed *next to* the existing PhaseTimers, composing with them rather
// than modifying them.
//
// Graceful fallback: perf_event_open is frequently unavailable
// (kernel.perf_event_paranoid, seccomp in CI containers, non-Linux
// hosts). Every failure path degrades to available() == false and every
// operation to a cheap no-op — binaries report "perf counters
// unavailable" instead of failing, which the CI fallback job asserts.
// Setting BRSMN_PERF_DISABLE=1 in the environment forces the fallback,
// so the no-op path is testable on perf-capable hosts too.
//
// Concurrency: counters are per-thread (the syscall is bound to the
// calling thread); a PhaseProfiler is single-owner like FabricHeatmap.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace brsmn::obs {

/// One grouped perf event set bound to the calling thread.
class PerfCounterGroup {
 public:
  struct Reading {
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t branch_misses = 0;
    bool valid = false;
  };

  /// Open the group; on any failure (syscall denied or missing, forced
  /// disable) the group is created unavailable.
  PerfCounterGroup();
  ~PerfCounterGroup();

  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  /// False: every other member is a no-op and read() returns !valid.
  bool available() const noexcept { return leader_fd_ >= 0; }

  /// Current counts, scaled by time_enabled/time_running when the kernel
  /// multiplexed the group. Phase deltas subtract two read() calls.
  Reading read() const;

  /// True when the environment (BRSMN_PERF_DISABLE=1) forces fallback.
  static bool force_disabled();

 private:
  int leader_fd_ = -1;
  std::array<int, 4> fds_{{-1, -1, -1, -1}};   ///< cycles, instr, cache, branch
  std::array<int, 4> slots_{{-1, -1, -1, -1}};  ///< group read index per event
};

/// Per-phase accumulated counter deltas plus derived rates.
struct PerfPhaseStats {
  std::string phase;
  std::uint64_t calls = 0;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;

  double ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
  }
  /// Misses per thousand instructions.
  double cache_mpki() const {
    return instructions == 0 ? 0.0
                             : 1000.0 * static_cast<double>(cache_misses) /
                                   static_cast<double>(instructions);
  }
  double branch_mpki() const {
    return instructions == 0 ? 0.0
                             : 1000.0 * static_cast<double>(branch_misses) /
                                   static_cast<double>(instructions);
  }
};

class MetricRegistry;

/// Accumulates PerfCounterGroup deltas per named phase. Scopes may nest
/// (an enclosing "total" scope includes its sub-phases, exactly like the
/// PhaseTimer histograms it sits beside).
class PhaseProfiler {
 public:
  PhaseProfiler();

  bool available() const noexcept { return group_.available(); }

  /// Stable id for a phase name (registered on first use — resolve once
  /// per route like RouteProbe::attach, not per scope).
  std::size_t phase_id(std::string_view phase);

  void accumulate(std::size_t id, const PerfCounterGroup::Reading& start,
                  const PerfCounterGroup::Reading& end);

  const PerfCounterGroup& group() const noexcept { return group_; }
  PerfCounterGroup& group() noexcept { return group_; }

  /// Per-phase stats in registration order.
  const std::vector<PerfPhaseStats>& phases() const noexcept {
    return phases_;
  }

  /// Human-readable per-phase table (cycles/call, IPC, MPKI columns);
  /// a single fallback line when unavailable.
  std::string to_table() const;

  /// Mirror derived rates into `<prefix>.<phase>.{cycles_per_call,ipc,
  /// cache_mpki,branch_mpki}` gauges so --metrics-out dumps carry them.
  void export_gauges(MetricRegistry& registry, std::string_view prefix) const;

 private:
  PerfCounterGroup group_;
  std::vector<PerfPhaseStats> phases_;
};

/// RAII phase scope: reads the group at construction and destruction and
/// accumulates the delta. A null profiler (or an unavailable group) costs
/// one branch.
class PerfScope {
 public:
  PerfScope(PhaseProfiler* profiler, std::size_t phase_id)
      : profiler_(profiler != nullptr && profiler->available() ? profiler
                                                               : nullptr),
        phase_id_(phase_id) {
    if (profiler_ != nullptr) start_ = profiler_->group().read();
  }
  ~PerfScope() { stop(); }

  /// End the scope early (mirrors PhaseTimer::stop); the destructor then
  /// does nothing.
  void stop() {
    if (profiler_ != nullptr) {
      profiler_->accumulate(phase_id_, start_, profiler_->group().read());
      profiler_ = nullptr;
    }
  }

  PerfScope(const PerfScope&) = delete;
  PerfScope& operator=(const PerfScope&) = delete;

 private:
  PhaseProfiler* profiler_;
  std::size_t phase_id_ = 0;
  PerfCounterGroup::Reading start_;
};

}  // namespace brsmn::obs
