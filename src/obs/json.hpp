// A minimal JSON value and recursive-descent parser, config_io-style:
// strict, dependency-free, ContractViolation on malformed input.
//
// Exists so metric dumps written by obs/export.hpp can be re-read and
// asserted on inside this repository (round-trip tests, CI smoke checks)
// without pulling in an external JSON library.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace brsmn::obs {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  using Storage = std::variant<std::nullptr_t, bool, double, std::string,
                               JsonArray, JsonObject>;

  JsonValue() : value_(nullptr) {}
  explicit JsonValue(std::nullptr_t) : value_(nullptr) {}
  explicit JsonValue(bool b) : value_(b) {}
  explicit JsonValue(double d) : value_(d) {}
  explicit JsonValue(std::string s)
      : value_(std::in_place_type<std::string>, std::move(s)) {}
  explicit JsonValue(JsonArray a)
      : value_(std::in_place_type<JsonArray>, std::move(a)) {}
  explicit JsonValue(JsonObject o)
      : value_(std::in_place_type<JsonObject>, std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  /// Typed accessors; throw ContractViolation on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  /// Object member access; throws ContractViolation when absent.
  const JsonValue& at(const std::string& key) const;
  bool contains(const std::string& key) const;

 private:
  Storage value_;
};

/// Parse a complete JSON document (one value, then end of input).
/// Throws ContractViolation with a byte offset on malformed input.
JsonValue parse_json(std::string_view text);

}  // namespace brsmn::obs
