// Structured exporters for a MetricRegistry: machine-readable JSON and
// CSV, plus a human-readable aligned table following the sim/render
// conventions (one instrument per line, fixed-width columns).
//
// JSON shape (stable key order — the registry snapshot is name-sorted):
//   {
//     "counters":   { "<name>": <uint>, ... },
//     "gauges":     { "<name>": <double>, ... },
//     "histograms": { "<name>": { "count": ..., "sum": ..., "min": ...,
//                                 "max": ..., "mean": ..., "p50": ...,
//                                 "p99": ..., "buckets": [ ... ] }, ... }
//   }
// Doubles print with enough digits to round-trip through obs/json.hpp.
#pragma once

#include <optional>
#include <string>

#include "obs/metrics.hpp"

namespace brsmn::obs {

std::string to_json(const RegistrySnapshot& snapshot);
std::string to_csv(const RegistrySnapshot& snapshot);
std::string to_table(const RegistrySnapshot& snapshot);

inline std::string to_json(const MetricRegistry& r) { return to_json(r.snapshot()); }
inline std::string to_csv(const MetricRegistry& r) { return to_csv(r.snapshot()); }
inline std::string to_table(const MetricRegistry& r) { return to_table(r.snapshot()); }

/// Write `content` to `path`; throws ContractViolation on I/O failure.
void write_file(const std::string& path, const std::string& content);

/// CLI-friendly dump: write the registry as JSON to `path`. On an empty
/// path or an I/O failure, prints the reason to stderr and returns false
/// instead of throwing — a long bench run should end with an error
/// message, not an abort.
bool try_write_metrics(const std::string& path, const MetricRegistry& r);

/// Scan argv for `--metrics-out=<path>`, remove it (adjusting argc), and
/// return the path. Lets benches and examples accept the flag before
/// handing the remaining arguments to benchmark::Initialize.
std::optional<std::string> consume_metrics_out_flag(int& argc, char** argv);

}  // namespace brsmn::obs
