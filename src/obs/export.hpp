// Structured exporters for a MetricRegistry: machine-readable JSON and
// CSV, plus a human-readable aligned table following the sim/render
// conventions (one instrument per line, fixed-width columns).
//
// JSON shape (stable key order — the registry snapshot is name-sorted):
//   {
//     "counters":   { "<name>": <uint>, ... },
//     "gauges":     { "<name>": <double>, ... },
//     "histograms": { "<name>": { "count": ..., "sum": ..., "min": ...,
//                                 "max": ..., "mean": ..., "p50": ...,
//                                 "p99": ..., "buckets": [ ... ] }, ... }
//   }
// Doubles print with enough digits to round-trip through obs/json.hpp.
#pragma once

#include <initializer_list>
#include <optional>
#include <string>
#include <utility>

#include "obs/metrics.hpp"

namespace brsmn::obs {

std::string to_json(const RegistrySnapshot& snapshot);
std::string to_csv(const RegistrySnapshot& snapshot);
std::string to_table(const RegistrySnapshot& snapshot);

inline std::string to_json(const MetricRegistry& r) { return to_json(r.snapshot()); }
inline std::string to_csv(const MetricRegistry& r) { return to_csv(r.snapshot()); }
inline std::string to_table(const MetricRegistry& r) { return to_table(r.snapshot()); }

/// Write `content` to `path`; throws ContractViolation on I/O failure.
void write_file(const std::string& path, const std::string& content);

/// CLI-friendly dump: write the registry as JSON to `path`; `-` writes to
/// stdout so benches compose with jq in pipelines. On an empty path or an
/// I/O failure, prints the reason to stderr and returns false instead of
/// throwing — a long bench run should end with an error message, not an
/// abort.
bool try_write_metrics(const std::string& path, const MetricRegistry& r);

/// Scan argv for `<flag><value>` (e.g. flag "--metrics-out="), remove the
/// argument (adjusting argc), and return the value. Lets benches and
/// examples accept obs flags before handing the remaining arguments to
/// benchmark::Initialize.
std::optional<std::string> consume_value_flag(int& argc, char** argv,
                                              std::string_view flag);

/// consume_value_flag for `--metrics-out=<path>`.
std::optional<std::string> consume_metrics_out_flag(int& argc, char** argv);

/// consume_value_flag for `--trace-out=<path>` (Chrome trace destination).
std::optional<std::string> consume_trace_out_flag(int& argc, char** argv);

/// True when a consumed dump path targets stdout (`-`). Binaries that
/// honor it must then route their human-readable report to stderr, so
/// the stdout stream stays pure JSON for the pipeline consuming it.
inline bool claims_stdout(const std::optional<std::string>& path) {
  return path.has_value() && *path == "-";
}

/// Guard for binaries with several `-`-capable dump streams
/// (--metrics-out / --trace-out / --telemetry-out): at most one may claim
/// stdout, since two JSON documents interleaved on one pipe are
/// unparseable. Returns true when the claims are exclusive; otherwise
/// prints an error naming the flags to stderr and returns false (callers
/// exit non-zero before running the workload).
bool stdout_claims_exclusive(
    std::initializer_list<std::pair<std::string_view,
                                    const std::optional<std::string>*>>
        streams);

}  // namespace brsmn::obs
