// RAII wall-clock scope timer recording into a Histogram, in nanoseconds
// on std::chrono::steady_clock.
//
// Cost discipline: constructed with a null sink the timer is a single
// branch (the clock is never read); with BRSMN_OBS_DISABLED it compiles
// to nothing at all, so instrumented hot paths can keep their timer
// scopes unconditionally.
#pragma once

#include <chrono>

#include "obs/metrics.hpp"

namespace brsmn::obs {

class PhaseTimer {
 public:
  /// Starts timing immediately; `sink == nullptr` disables the timer.
  explicit PhaseTimer(Histogram* sink) noexcept {
#if !defined(BRSMN_OBS_DISABLED)
    sink_ = sink;
    if (sink_ != nullptr) start_ = std::chrono::steady_clock::now();
#else
    (void)sink;
#endif
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  ~PhaseTimer() { stop(); }

  /// Records the elapsed nanoseconds once; later calls (and the
  /// destructor) are no-ops.
  void stop() noexcept {
#if !defined(BRSMN_OBS_DISABLED)
    if (sink_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    sink_->record(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
    sink_ = nullptr;
#endif
  }

 private:
#if !defined(BRSMN_OBS_DISABLED)
  Histogram* sink_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
#endif
};

}  // namespace brsmn::obs
