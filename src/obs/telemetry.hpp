// Live telemetry: a background sampler turning the cumulative
// MetricRegistry into a time series.
//
// The exporters in obs/export.hpp report end-of-run aggregates; a
// long-lived service (group-churn streams, queued-switch epochs) needs
// *rates over time* — offered load vs. time is how the MIN literature
// (PAPERS.md) evaluates these fabrics. TelemetrySampler snapshots a
// registry on a fixed interval into a fixed-capacity ring of timestamped
// slots and derives per-interval rates (routes/sec, plan-cache hit rate,
// patch ratio, backlog depth) at export.
//
// Allocation discipline: the ring slots are preallocated and reused in
// place via MetricRegistry::snapshot_into, so once the instrument set has
// stabilized a sample performs zero heap allocations — the sampler can
// run during the replay hot path without perturbing it (asserted by the
// soak test in tests/test_telemetry.cpp). When the ring wraps, the oldest
// samples are overwritten and counted in dropped(); the JSONL export
// carries whatever the ring still holds plus a final rollup, so a slow
// consumer loses history, never recent data.
//
// Export format (JSON Lines, one object per line):
//   {"type":"telemetry_header","version":1,"source":...,"interval_ms":...,
//    "capacity":...}
//   {"type":"sample","seq":...,"t_s":...,"dt_s":...,
//    "counters":{<non-zero deltas since the previous retained sample>},
//    "gauges":{...}, "derived":{"routes_per_sec":...,
//    "plan_cache_hit_rate":...,"patch_ratio":...,"backlog_depth":...}}
//   {"type":"fabric_heatmap", ...}            (when a heatmap is attached)
//   {"type":"rollup","samples":...,"dropped":...,"duration_s":...,
//    "metrics":{<obs/export.hpp JSON shape>}}
// The rollup's "metrics" object is exactly what try_write_metrics writes,
// so tools/bench_diff can gate two telemetry files like two metric dumps,
// and tools/telemetry_report renders the series and the heatmap grid.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace brsmn::obs {

class FabricHeatmap;

struct TelemetryConfig {
  /// Sampling period of the background thread (sample_now() is manual).
  std::chrono::milliseconds interval{100};
  /// Ring capacity in samples; the oldest are dropped on wrap.
  std::size_t capacity = 4096;
  /// Free-form label echoed in the header line (binary / workload name).
  std::string source;
  /// Registry names feeding the derived series; empty names (or names
  /// absent from the registry) simply omit that series.
  std::string routes_counter;      ///< routes/sec numerator
  std::string hits_counter;        ///< plan-cache hit-rate numerator
  std::string misses_counter;      ///< hit-rate denominator is hits+misses
  std::string patched_counter;     ///< patch-ratio numerator
  std::string patch_base_counter;  ///< patch-ratio denominator
  std::string backlog_gauge;       ///< backlog-depth series
  /// Resilience rates, so chaos runs are gate-able by bench_diff like
  /// any other metric: fault_detected_rate is detections/sec
  /// (typically "fault.detected"); degraded_ratio is the fraction of
  /// the interval's completions that were degraded —
  /// degraded_counter / degraded_base_counter deltas (typically
  /// "fault.degraded" over "route.routes" or "cluster.routed").
  std::string detected_counter;       ///< fault_detected_rate numerator
  std::string degraded_counter;       ///< degraded_ratio numerator
  std::string degraded_base_counter;  ///< degraded_ratio denominator
};

/// One retained sample: the registry's cumulative state at a timestamp.
/// Deltas and rates are derived between consecutive samples at export.
struct TelemetrySample {
  std::uint64_t seq = 0;  ///< 0-based take order (survives ring wrap)
  double t_s = 0.0;       ///< seconds since the sampler was constructed
  double dt_s = 0.0;      ///< seconds since the previous take
  RegistrySnapshot cum;
};

class TelemetrySampler {
 public:
  TelemetrySampler(MetricRegistry& registry, TelemetryConfig config);
  ~TelemetrySampler();  ///< stops the thread if still running

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Launch the background thread (idempotent while running).
  void start();
  /// Stop and join the background thread (idempotent; also takes one
  /// final sample so short runs always export a closing data point).
  void stop();

  /// Take one sample synchronously — deterministic driving for tests and
  /// for callers that sample at workload boundaries instead of on time.
  void sample_now();

  /// Samples taken so far (including ones the ring has since dropped).
  std::uint64_t samples() const;
  /// Samples overwritten by ring wrap.
  std::uint64_t dropped() const;

  /// Attach a heatmap whose snapshot is embedded in the JSONL export
  /// (not sampled over time — fabric heatmaps are cumulative planes).
  /// The map must outlive the sampler's exports and be quiescent then.
  void set_heatmap(const FabricHeatmap* map);

  /// Copies of the retained samples, oldest first.
  std::vector<TelemetrySample> series() const;

  /// The full JSONL document described above.
  std::string to_jsonl() const;

  /// Write to_jsonl() to `path` (`-` = stdout). Prints the failure reason
  /// to stderr and returns false instead of throwing, like
  /// try_write_metrics.
  bool write(const std::string& path) const;

  const TelemetryConfig& config() const noexcept { return config_; }

 private:
  void sample_locked();
  void run();

  MetricRegistry& registry_;
  TelemetryConfig config_;
  const FabricHeatmap* heatmap_ = nullptr;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::thread worker_;
  bool running_ = false;
  bool stop_requested_ = false;
  std::vector<TelemetrySample> slots_;  ///< ring, preallocated
  std::uint64_t taken_ = 0;
  double last_t_s_ = 0.0;
};

/// consume_value_flag (obs/export.hpp) for `--telemetry-out=<path|->`.
std::optional<std::string> consume_telemetry_out_flag(int& argc, char** argv);

}  // namespace brsmn::obs
