#include "obs/perf_counters.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace brsmn::obs {

bool PerfCounterGroup::force_disabled() {
  const char* env = std::getenv("BRSMN_PERF_DISABLE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

#if defined(__linux__)

namespace {

int open_event(std::uint32_t type, std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.size = sizeof attr;
  attr.type = type;
  attr.config = config;
  attr.disabled = 0;
  attr.exclude_kernel = 1;  // usable under perf_event_paranoid <= 2
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, 0, -1, group_fd,
                                  0UL));
}

}  // namespace

PerfCounterGroup::PerfCounterGroup() {
  if (force_disabled()) return;
  leader_fd_ =
      open_event(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
  if (leader_fd_ < 0) return;  // denied / unsupported: stay unavailable
  fds_[0] = leader_fd_;
  slots_[0] = 0;
  int next_slot = 1;
  const std::uint64_t members[3] = {PERF_COUNT_HW_INSTRUCTIONS,
                                    PERF_COUNT_HW_CACHE_MISSES,
                                    PERF_COUNT_HW_BRANCH_MISSES};
  for (int i = 0; i < 3; ++i) {
    const int fd = open_event(PERF_TYPE_HARDWARE, members[i], leader_fd_);
    if (fd >= 0) {
      fds_[i + 1] = fd;
      slots_[i + 1] = next_slot++;  // group values arrive in open order
    }
  }
}

PerfCounterGroup::~PerfCounterGroup() {
  for (int i = 3; i >= 0; --i) {
    if (fds_[i] >= 0 && fds_[i] != leader_fd_) close(fds_[i]);
  }
  if (leader_fd_ >= 0) close(leader_fd_);
}

PerfCounterGroup::Reading PerfCounterGroup::read() const {
  Reading r;
  if (leader_fd_ < 0) return r;
  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, value[nr].
  std::uint64_t buf[3 + 4] = {};
  const ssize_t got = ::read(leader_fd_, buf, sizeof buf);
  if (got < static_cast<ssize_t>(3 * sizeof(std::uint64_t))) return r;
  const std::uint64_t nr = buf[0];
  const std::uint64_t enabled = buf[1];
  const std::uint64_t running = buf[2];
  // Scale for multiplexing: counts extrapolate by enabled/running time.
  const double scale =
      running != 0 && running < enabled
          ? static_cast<double>(enabled) / static_cast<double>(running)
          : 1.0;
  const auto value = [&](int event) -> std::uint64_t {
    const int slot = slots_[event];
    if (slot < 0 || static_cast<std::uint64_t>(slot) >= nr) return 0;
    return static_cast<std::uint64_t>(
        static_cast<double>(buf[3 + slot]) * scale);
  };
  r.cycles = value(0);
  r.instructions = value(1);
  r.cache_misses = value(2);
  r.branch_misses = value(3);
  r.valid = true;
  return r;
}

#else  // !__linux__: permanent graceful fallback

PerfCounterGroup::PerfCounterGroup() = default;
PerfCounterGroup::~PerfCounterGroup() = default;

PerfCounterGroup::Reading PerfCounterGroup::read() const { return {}; }

#endif

PhaseProfiler::PhaseProfiler() = default;

std::size_t PhaseProfiler::phase_id(std::string_view phase) {
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (phases_[i].phase == phase) return i;
  }
  PerfPhaseStats stats;
  stats.phase = std::string(phase);
  phases_.push_back(std::move(stats));
  return phases_.size() - 1;
}

void PhaseProfiler::accumulate(std::size_t id,
                               const PerfCounterGroup::Reading& start,
                               const PerfCounterGroup::Reading& end) {
  if (!start.valid || !end.valid || id >= phases_.size()) return;
  PerfPhaseStats& p = phases_[id];
  ++p.calls;
  const auto delta = [](std::uint64_t a, std::uint64_t b) {
    return b > a ? b - a : 0;
  };
  p.cycles += delta(start.cycles, end.cycles);
  p.instructions += delta(start.instructions, end.instructions);
  p.cache_misses += delta(start.cache_misses, end.cache_misses);
  p.branch_misses += delta(start.branch_misses, end.branch_misses);
}

std::string PhaseProfiler::to_table() const {
  if (!available()) {
    return "perf counters unavailable (perf_event_open denied or "
           "unsupported); phase profiling disabled\n";
  }
  std::string out;
  char line[200];
  std::snprintf(line, sizeof line, "%-12s %10s %16s %8s %12s %12s\n", "phase",
                "calls", "cycles/call", "ipc", "cache_mpki", "branch_mpki");
  out += line;
  for (const PerfPhaseStats& p : phases_) {
    if (p.calls == 0) continue;
    std::snprintf(line, sizeof line, "%-12s %10llu %16.0f %8.2f %12.3f %12.3f\n",
                  p.phase.c_str(), static_cast<unsigned long long>(p.calls),
                  static_cast<double>(p.cycles) / static_cast<double>(p.calls),
                  p.ipc(), p.cache_mpki(), p.branch_mpki());
    out += line;
  }
  return out;
}

void PhaseProfiler::export_gauges(MetricRegistry& registry,
                                  std::string_view prefix) const {
  if (!available()) return;
  for (const PerfPhaseStats& p : phases_) {
    if (p.calls == 0) continue;
    const std::string base = std::string(prefix) + '.' + p.phase + '.';
    registry.gauge(base + "cycles_per_call")
        .set(static_cast<double>(p.cycles) / static_cast<double>(p.calls));
    registry.gauge(base + "ipc").set(p.ipc());
    registry.gauge(base + "cache_mpki").set(p.cache_mpki());
    registry.gauge(base + "branch_mpki").set(p.branch_mpki());
  }
}

}  // namespace brsmn::obs
