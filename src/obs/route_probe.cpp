#include "obs/route_probe.hpp"

#include "obs/perf_counters.hpp"

namespace brsmn::obs {

RouteProbe RouteProbe::attach(MetricRegistry& registry,
                              std::string_view prefix) {
  RouteProbe probe;
  probe.registry = &registry;
  probe.prefix = std::string(prefix);
  probe.scatter = &registry.histogram(probe.prefix + ".phase.scatter_ns");
  probe.eps_divide =
      &registry.histogram(probe.prefix + ".phase.eps_divide_ns");
  probe.quasisort = &registry.histogram(probe.prefix + ".phase.quasisort_ns");
  probe.datapath = &registry.histogram(probe.prefix + ".phase.datapath_ns");
  probe.total = &registry.histogram(probe.prefix + ".phase.total_ns");
  return probe;
}

void RouteProbe::attach_profiler(PhaseProfiler* p) {
  if (p == nullptr || !p->available()) return;
  profiler = p;
  perf_scatter = p->phase_id("scatter");
  perf_eps_divide = p->phase_id("eps_divide");
  perf_quasisort = p->phase_id("quasisort");
  perf_datapath = p->phase_id("datapath");
  perf_total = p->phase_id("total");
  perf_replay = p->phase_id("replay");
}

void RouteProbe::record_stats(const RoutingStats& stats) const {
  if (registry == nullptr) return;
  registry->counter(prefix + ".routes").add(1);
  registry->counter(prefix + ".switch_traversals")
      .add(stats.switch_traversals);
  registry->counter(prefix + ".broadcast_ops").add(stats.broadcast_ops);
  registry->counter(prefix + ".tree_fwd_ops").add(stats.tree_fwd_ops);
  registry->counter(prefix + ".tree_bwd_ops").add(stats.tree_bwd_ops);
  registry->counter(prefix + ".fabric_passes").add(stats.fabric_passes);
  registry->counter(prefix + ".gate_delay").add(stats.gate_delay);
}

}  // namespace brsmn::obs
