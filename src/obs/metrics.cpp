#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace brsmn::obs {

// --- P2Quantile -----------------------------------------------------------

P2Quantile::P2Quantile(double q) : q_(q) {
  BRSMN_EXPECTS(q > 0.0 && q < 1.0);
  increments_ = {0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0};
}

void P2Quantile::observe(double x) {
  if (count_ < 5) {
    heights_[count_++] = x;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (std::size_t i = 0; i < 5; ++i) {
        positions_[i] = static_cast<double>(i + 1);
      }
      desired_ = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_, 5.0};
    }
    return;
  }

  // Locate the cell containing x, clamping the extreme markers.
  std::size_t k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = std::max(heights_[4], x);
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (std::size_t i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust the three interior markers toward their desired positions.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double gap_up = positions_[i + 1] - positions_[i];
    const double gap_down = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && gap_up > 1.0) || (d <= -1.0 && gap_down < -1.0)) {
      const double s = d >= 1.0 ? 1.0 : -1.0;
      // Piecewise-parabolic prediction of the new height.
      const double qi = heights_[i];
      const double parabolic =
          qi + s / (positions_[i + 1] - positions_[i - 1]) *
                   ((positions_[i] - positions_[i - 1] + s) *
                        (heights_[i + 1] - qi) / gap_up +
                    (positions_[i + 1] - positions_[i] - s) *
                        (qi - heights_[i - 1]) / -gap_down);
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        heights_[i] = parabolic;
      } else {  // fall back to linear interpolation toward the neighbor
        const std::size_t j = d >= 1.0 ? i + 1 : i - 1;
        heights_[i] = qi + s * (heights_[j] - qi) /
                               (positions_[j] - positions_[i]);
      }
      positions_[i] += s;
    }
  }
  ++count_;
}

double P2Quantile::estimate() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact small-sample quantile: sort what we have and index it.
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + count_);
    const auto idx = static_cast<std::size_t>(
        q_ * static_cast<double>(count_ - 1) + 0.5);
    return sorted[std::min(idx, static_cast<std::size_t>(count_ - 1))];
  }
  return heights_[2];
}

// --- Histogram ------------------------------------------------------------

namespace {

std::size_t bucket_index(double v) {
  if (!(v >= 1.0)) return 0;  // negatives and NaN land in the first bucket
  const int exp = std::ilogb(v);
  return std::min<std::size_t>(static_cast<std::size_t>(exp) + 1,
                               Histogram::kBuckets - 1);
}

/// [lower, upper) value range covered by bucket i.
std::pair<double, double> bucket_bounds(std::size_t i) {
  if (i == 0) return {0.0, 1.0};
  return {std::ldexp(1.0, static_cast<int>(i) - 1),
          std::ldexp(1.0, static_cast<int>(i))};
}

}  // namespace

void Histogram::record(double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[bucket_index(value)];
  p50_.observe(value);
  p99_.observe(value);
}

std::uint64_t Histogram::count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

void Histogram::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
  buckets_.fill(0);
  p50_ = P2Quantile(0.5);
  p99_ = P2Quantile(0.99);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  snapshot_into(s);
  return s;
}

void Histogram::snapshot_into(HistogramSnapshot& s) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  s.count = count_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  s.p50 = p50_.estimate();
  s.p99 = p99_.estimate();
  std::size_t last = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] != 0) last = i + 1;
  }
  s.buckets.resize(last);  // reuses capacity once the extent has been seen
  std::copy(buckets_.begin(), buckets_.begin() + static_cast<std::ptrdiff_t>(last),
            s.buckets.begin());
}

double HistogramSnapshot::bucket_quantile(double q) const {
  BRSMN_EXPECTS(q >= 0.0 && q <= 1.0);
  if (count == 0) return 0.0;
  const double target = q * static_cast<double>(count);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const double next = cumulative + static_cast<double>(buckets[i]);
    if (next >= target && buckets[i] != 0) {
      auto [lo, hi] = bucket_bounds(i);
      lo = std::max(lo, min);
      hi = std::min(hi, max);
      if (hi <= lo) return lo;
      const double frac =
          (target - cumulative) / static_cast<double>(buckets[i]);
      return lo + frac * (hi - lo);
    }
    cumulative = next;
  }
  return max;
}

// --- MetricRegistry -------------------------------------------------------

namespace {

template <typename T>
T& find_or_create(std::map<std::string, std::unique_ptr<T>, std::less<>>& map,
                  std::string_view name) {
  const auto it = map.find(name);
  if (it != map.end()) return *it->second;
  return *map.emplace(std::string(name), std::make_unique<T>()).first->second;
}

}  // namespace

Counter& MetricRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(counters_, name);
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(gauges_, name);
}

Histogram& MetricRegistry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(histograms_, name);
}

void MetricRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
}

namespace {

/// Reset the map entries belonging to the family `prefix`: the key
/// `prefix` itself and keys extending it with a '.' segment. A raw
/// string-prefix match would make reset("plan_patch") also clear a
/// "plan_patch2.*" family — per-family resets (the bench harness resets
/// exactly the family a phase is about to measure) need the boundary.
/// The maps are ordered, so candidates are contiguous from
/// lower_bound(prefix); non-family extensions (e.g. "routes" after
/// "route.*") sort inside that range and are skipped, not stopped at.
template <typename Map>
void reset_prefix_range(Map& map, std::string_view prefix) {
  for (auto it = map.lower_bound(prefix); it != map.end(); ++it) {
    const std::string_view name(it->first);
    if (name.substr(0, prefix.size()) != prefix) break;
    if (name.size() > prefix.size() && name[prefix.size()] != '.') continue;
    it->second->reset();
  }
}

}  // namespace

void MetricRegistry::reset(std::string_view prefix) {
  const std::lock_guard<std::mutex> lock(mutex_);
  reset_prefix_range(counters_, prefix);
  reset_prefix_range(gauges_, prefix);
  reset_prefix_range(histograms_, prefix);
}

RegistrySnapshot MetricRegistry::snapshot() const {
  RegistrySnapshot s;
  snapshot_into(s);
  return s;
}

void MetricRegistry::snapshot_into(RegistrySnapshot& s) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  // Assign names and values in place: string assignment reuses the
  // destination's buffer and resize within capacity moves nothing, so a
  // stable instrument set makes this allocation-free (the sampler ring
  // reuses its slots every tick).
  s.counters.resize(counters_.size());
  std::size_t i = 0;
  for (const auto& [name, c] : counters_) {
    s.counters[i].first = name;
    s.counters[i].second = c->value();
    ++i;
  }
  s.gauges.resize(gauges_.size());
  i = 0;
  for (const auto& [name, g] : gauges_) {
    s.gauges[i].first = name;
    s.gauges[i].second = g->value();
    ++i;
  }
  s.histograms.resize(histograms_.size());
  i = 0;
  for (const auto& [name, h] : histograms_) {
    s.histograms[i].first = name;
    h->snapshot_into(s.histograms[i].second);
    ++i;
  }
}

}  // namespace brsmn::obs
