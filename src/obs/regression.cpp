#include "obs/regression.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <optional>

#include "common/contracts.hpp"

namespace brsmn::obs {

namespace {

constexpr std::string_view kHistogramStats[] = {"count", "sum", "min", "max",
                                                "mean", "p50",  "p99"};

bool is_histogram_stat(std::string_view stat) {
  for (const std::string_view s : kHistogramStats) {
    if (s == stat) return true;
  }
  return false;
}

/// Resolve one metric name (no ratio) in a document; nullopt if absent.
std::optional<double> lookup_single(const JsonValue& doc,
                                    const std::string& metric,
                                    const std::string& stat) {
  if (!doc.is_object()) return std::nullopt;
  if (stat.empty()) {
    for (const char* section : {"counters", "gauges"}) {
      if (!doc.contains(section)) continue;
      const JsonValue& metrics = doc.at(section);
      if (metrics.contains(metric)) {
        return metrics.at(metric).as_number();
      }
    }
    return std::nullopt;
  }
  if (!doc.contains("histograms")) return std::nullopt;
  const JsonValue& histograms = doc.at("histograms");
  if (!histograms.contains(metric)) return std::nullopt;
  const JsonValue& hist = histograms.at(metric);
  if (!hist.contains(stat)) return std::nullopt;
  return hist.at(stat).as_number();
}

/// Resolve one checked statistic in a metric document; nullopt if absent.
/// "A/B" resolves both sides and returns their ratio (0/0 -> 0, x/0 ->
/// +inf for x > 0).
std::optional<double> lookup(const JsonValue& doc,
                             const RegressionCheck& check) {
  const std::size_t slash = check.metric.find('/');
  if (slash == std::string::npos) {
    return lookup_single(doc, check.metric, check.stat);
  }
  const std::optional<double> num =
      lookup_single(doc, check.metric.substr(0, slash), check.stat);
  const std::optional<double> den =
      lookup_single(doc, check.metric.substr(slash + 1), check.stat);
  if (!num || !den) return std::nullopt;
  if (*den == 0.0) {
    return *num == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return *num / *den;
}

}  // namespace

RegressionCheck parse_check(const std::string& selector,
                            double default_threshold) {
  RegressionCheck check;
  check.max_regression = default_threshold;
  std::string_view rest = selector;
  if (const std::size_t at = rest.rfind('@'); at != std::string_view::npos) {
    const std::string threshold(rest.substr(at + 1));
    char* end = nullptr;
    check.max_regression = std::strtod(threshold.c_str(), &end);
    BRSMN_EXPECTS_MSG(end != nullptr && *end == '\0' && !threshold.empty() &&
                          check.max_regression > -1.0,
                      "malformed @threshold in regression selector");
    rest = rest.substr(0, at);
  }
  if (const std::size_t colon = rest.find(':');
      colon != std::string_view::npos) {
    check.metric = std::string(rest.substr(0, colon));
    check.stat = std::string(rest.substr(colon + 1));
    BRSMN_EXPECTS_MSG(is_histogram_stat(check.stat),
                      "regression selector stat must be one of "
                      "count/sum/min/max/mean/p50/p99");
  } else {
    check.metric = std::string(rest);
  }
  BRSMN_EXPECTS_MSG(!check.metric.empty(),
                    "regression selector needs a metric name");
  return check;
}

bool RegressionReport::any_regressed() const {
  for (const RegressionOutcome& o : outcomes) {
    if (o.regressed) return true;
  }
  return false;
}

bool RegressionReport::any_missing() const {
  for (const RegressionOutcome& o : outcomes) {
    if (o.missing) return true;
  }
  return false;
}

RegressionReport diff_metrics(const JsonValue& baseline,
                              const JsonValue& current,
                              std::span<const RegressionCheck> checks) {
  RegressionReport report;
  report.outcomes.reserve(checks.size());
  for (const RegressionCheck& check : checks) {
    RegressionOutcome out;
    out.check = check;
    const std::optional<double> base = lookup(baseline, check);
    const std::optional<double> cur = lookup(current, check);
    if (!base || !cur) {
      out.missing = true;
      report.outcomes.push_back(std::move(out));
      continue;
    }
    out.baseline = *base;
    out.current = *cur;
    if (out.baseline > 0.0) {
      out.change = (out.current - out.baseline) / out.baseline;
    } else {
      out.change = out.current > out.baseline
                       ? std::numeric_limits<double>::infinity()
                       : 0.0;
    }
    out.regressed = out.change > check.max_regression;
    report.outcomes.push_back(std::move(out));
  }
  return report;
}

std::string to_table(const RegressionReport& report) {
  std::string table;
  for (const RegressionOutcome& o : report.outcomes) {
    std::string name = o.check.metric;
    if (!o.check.stat.empty()) name += ":" + o.check.stat;
    char line[256];
    if (o.missing) {
      std::snprintf(line, sizeof line, "%-36s MISSING (not in both files)\n",
                    name.c_str());
    } else {
      std::snprintf(line, sizeof line,
                    "%-36s %14.3f -> %14.3f  %+8.2f%% (limit %+.2f%%)  %s\n",
                    name.c_str(), o.baseline, o.current, o.change * 100.0,
                    o.check.max_regression * 100.0,
                    o.regressed ? "REGRESSED" : "ok");
    }
    table += line;
  }
  return table;
}

}  // namespace brsmn::obs
