#include "hw/routing_circuit.hpp"

#include "common/bits.hpp"
#include "common/contracts.hpp"
#include "hw/bit_serial.hpp"

namespace brsmn::hw {

namespace {

/// Bit-serial addition of two values, LSB first, over `bits` cycles —
/// the backward-phase node hardware. Returns the sum (truncated to
/// `bits` bits, which is enough: s + l0 < 2^(bits)).
std::uint64_t serial_add(std::uint64_t a, std::uint64_t b, int bits) {
  BitSerialAdder adder;
  std::uint64_t sum = 0;
  for (int i = 0; i < bits; ++i) {
    if (adder.step((a >> i) & 1u, (b >> i) & 1u)) {
      sum |= std::uint64_t{1} << i;
    }
  }
  return sum;
}

}  // namespace

GateLevelBitSorter::GateLevelBitSorter(std::size_t n)
    : n_(n), m_(log2_exact(n)), forward_tree_(n) {
  BRSMN_EXPECTS(n >= 2);
}

std::size_t GateLevelBitSorter::gate_count() const noexcept {
  // Forward tree + one backward serial adder per internal node + an
  // (m+1)-bit comparator (~3 gates per bit) per switch.
  const std::size_t nodes = n_ - 1;
  const std::size_t comparator_gates =
      3 * static_cast<std::size_t>(m_ + 1) * (n_ / 2) *
      static_cast<std::size_t>(m_);
  return forward_tree_.gate_count() + nodes * BitSerialAdder::gate_count() +
         comparator_gates;
}

GateLevelBitSorter::Result GateLevelBitSorter::compute(
    const std::vector<int>& keys, std::size_t s_root) const {
  BRSMN_EXPECTS(keys.size() == n_);
  BRSMN_EXPECTS(s_root < n_);

  // Forward phase: the pipelined adder tree gives every node's 1-count.
  std::vector<std::uint64_t> leaf_bits(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    BRSMN_EXPECTS(keys[i] == 0 || keys[i] == 1);
    leaf_bits[i] = static_cast<std::uint64_t>(keys[i]);
  }
  const PipelinedAdderTree::Result fwd = forward_tree_.run(leaf_bits, 1);

  // Backward phase: per node, one serial addition s + l0; its low j-1
  // bits are s1 and bit j-1 is b (Lemma 1). The start positions flow
  // down the tree; the cycle cost is symmetric to the forward sweep.
  Result result;
  result.settings.assign(static_cast<std::size_t>(m_), {});
  std::vector<std::uint64_t> start{s_root};
  const int bits = m_ + 1;
  for (int j = m_; j >= 1; --j) {
    auto& stage = result.settings[static_cast<std::size_t>(j - 1)];
    stage.assign(n_ / 2, SwitchSetting::Parallel);
    const std::size_t half = std::size_t{1} << (j - 1);
    std::vector<std::uint64_t> next(start.size() * 2);
    for (std::size_t block = 0; block < start.size(); ++block) {
      const std::uint64_t s = start[block];
      const std::uint64_t l0 =
          fwd.node_sums[static_cast<std::size_t>(j - 1)][2 * block];
      const std::uint64_t sum = serial_add(s, l0, bits);
      const std::uint64_t s1 = sum & (half - 1);
      const bool b = (sum >> (j - 1)) & 1u;
      next[2 * block] = s & (half - 1);  // s0: drop the top bit
      next[2 * block + 1] = s1;
      // Switch-setting phase: switch i of the block compares its local
      // index against s1 (W^{half}_{0, s1; b-bar, b}).
      const SwitchSetting run = b ? SwitchSetting::Cross
                                  : SwitchSetting::Parallel;
      const SwitchSetting rest = opposite_unicast(run);
      for (std::size_t i = 0; i < half; ++i) {
        stage[block * half + i] = i < s1 ? run : rest;
      }
    }
    start = std::move(next);
  }

  // Cycles: the forward pipeline, plus the symmetric backward pipeline
  // (depth-m fill + m+1 streamed bits; the comparators are combinational).
  result.cycles = fwd.cycles + static_cast<std::size_t>(m_) +
                  static_cast<std::size_t>(bits);
  return result;
}

}  // namespace brsmn::hw
