// The complete gate-level self-routing circuit for the RBN bit sorter
// (paper Sections 6.1 + 7.2): the forward phase is the pipelined adder
// tree of Fig. 12; the backward phase computes each node's child start
// positions with one more bit-serial adder per node (s1 = (s + l0) mod
// n'/2 and the b bit are both read off the serial sum); the switch-
// setting phase is a per-switch comparator against s1.
//
// The circuit must — and is tested to — produce bit-for-bit the same
// settings grid as the behavioral algorithm (core/bit_sorter.hpp), in
// exactly the cycle count charged by config_sweep_delay().
#pragma once

#include <cstddef>
#include <vector>

#include "core/switch_setting.hpp"
#include "hw/adder_tree.hpp"

namespace brsmn::hw {

class GateLevelBitSorter {
 public:
  /// A circuit instance for an n-input RBN (n a power of two >= 2).
  explicit GateLevelBitSorter(std::size_t n);

  std::size_t size() const noexcept { return n_; }

  /// Total gates: the forward adder tree, one backward bit-serial adder
  /// per tree node, and a comparator per switch.
  std::size_t gate_count() const noexcept;

  struct Result {
    /// settings[stage-1][switch] over the whole fabric, identical to
    /// what configure_bit_sorter installs.
    std::vector<std::vector<SwitchSetting>> settings;
    /// Total cycles: forward pipeline + backward pipeline. Matches
    /// config_sweep_delay(log2 n).
    std::size_t cycles = 0;
  };

  /// Run the circuit: keys in {0,1}, s_root < n.
  Result compute(const std::vector<int>& keys, std::size_t s_root) const;

 private:
  std::size_t n_;
  int m_;
  PipelinedAdderTree forward_tree_;
};

}  // namespace brsmn::hw
