// The gate-level self-routing circuit for the RBN scatter network
// (paper Table 4 + Section 7.2).
//
// Forward phase per tree node: one type-compare gate, a bit-serial adder
// (ε/α-addition) and a pair of bit-serial subtractors run in parallel
// (ε/α-elimination; the borrow flag selects the dominating child and
// |l0 - l1|). Backward phase per node: a bit-serial adder produces
// s + l0 or s + l, whose low bits are the child start positions and
// whose high bits select the Lemma 1-5 case. The per-switch setting
// decode is combinational (a comparator window against the run bounds).
//
// Tested to produce bit-for-bit the settings of configure_scatter in the
// config_sweep_delay cycle budget.
#pragma once

#include <cstddef>
#include <vector>

#include "core/scatter.hpp"
#include "core/switch_setting.hpp"
#include "core/tag.hpp"

namespace brsmn::hw {

class GateLevelScatter {
 public:
  explicit GateLevelScatter(std::size_t n);

  std::size_t size() const noexcept { return n_; }

  struct Result {
    std::vector<std::vector<SwitchSetting>> settings;  ///< [stage-1][switch]
    ScatterNodeValue root;  ///< dominating type and surplus at the root
    std::size_t cycles = 0;
  };

  /// Run the circuit on input tags in {0, 1, α, ε}, placing the surplus
  /// run at s_root.
  Result compute(const std::vector<Tag>& tags, std::size_t s_root) const;

 private:
  std::size_t n_;
  int m_;
};

}  // namespace brsmn::hw
