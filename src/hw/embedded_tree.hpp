// The forward/backward tree embedding of Fig. 8b.
//
// The distributed algorithms run on the complete binary tree of sub-RBNs
// (Fig. 8a). For "balanced hardware distribution" the paper embeds two
// copies of the tree into the fabric itself: the node of sub-RBN (j, b)
// is hosted by the FIRST switch of block b's stage-j merging network in
// the forward tree, and by the LAST switch in the backward tree, with
// the switches in between consuming those nodes' results. This module
// computes the embedding and the per-switch load it induces; tests prove
// the O(1)-circuitry-per-switch claim (each physical switch hosts at
// most one forward and one backward node).
#pragma once

#include <cstddef>
#include <vector>

#include "topology/rbn_topology.hpp"

namespace brsmn::hw {

/// A tree node's physical location: a stage and a switch within it.
struct SwitchCoord {
  int stage = 0;            ///< 1-based stage
  std::size_t switch_index = 0;  ///< stage-switch index, in [0, n/2)

  friend bool operator==(const SwitchCoord&, const SwitchCoord&) = default;
};

/// The switch hosting the forward-tree node of sub-RBN (stage, block):
/// the first switch of the block's merging network.
SwitchCoord forward_node_switch(const topo::RbnTopology& topo, int stage,
                                std::size_t block);

/// The switch hosting the backward-tree node of sub-RBN (stage, block):
/// the last switch of the block's merging network.
SwitchCoord backward_node_switch(const topo::RbnTopology& topo, int stage,
                                 std::size_t block);

/// Per-switch hosting load over the whole fabric: how many forward and
/// backward tree nodes each switch hosts. Indexed [stage-1][switch].
struct EmbeddingLoad {
  std::vector<std::vector<std::size_t>> forward_nodes;
  std::vector<std::vector<std::size_t>> backward_nodes;
};
EmbeddingLoad embedding_load(const topo::RbnTopology& topo);

}  // namespace brsmn::hw
