#include "hw/netlist.hpp"

#include "common/bits.hpp"
#include "hw/bit_serial.hpp"

namespace brsmn::hw {

int Netlist::check_comb_operand(int id) const {
  BRSMN_EXPECTS_MSG(id >= 0 && id < static_cast<int>(gates_.size()),
                    "operand does not exist yet (combinational gates may "
                    "only reference earlier gates)");
  return id;
}

int Netlist::add_input() {
  gates_.push_back({GateKind::Input, -1, -1});
  return static_cast<int>(gates_.size()) - 1;
}

int Netlist::add_and(int a, int b) {
  gates_.push_back({GateKind::And, check_comb_operand(a),
                    check_comb_operand(b)});
  return static_cast<int>(gates_.size()) - 1;
}

int Netlist::add_or(int a, int b) {
  gates_.push_back({GateKind::Or, check_comb_operand(a),
                    check_comb_operand(b)});
  return static_cast<int>(gates_.size()) - 1;
}

int Netlist::add_xor(int a, int b) {
  gates_.push_back({GateKind::Xor, check_comb_operand(a),
                    check_comb_operand(b)});
  return static_cast<int>(gates_.size()) - 1;
}

int Netlist::add_not(int a) {
  gates_.push_back({GateKind::Not, check_comb_operand(a), -1});
  return static_cast<int>(gates_.size()) - 1;
}

int Netlist::add_dff() {
  gates_.push_back({GateKind::Dff, -1, -1});
  return static_cast<int>(gates_.size()) - 1;
}

void Netlist::connect_dff(int dff, int data) {
  BRSMN_EXPECTS(dff >= 0 && dff < static_cast<int>(gates_.size()));
  BRSMN_EXPECTS(gates_[static_cast<std::size_t>(dff)].kind_tag ==
                GateKind::Dff);
  BRSMN_EXPECTS(data >= 0 && data < static_cast<int>(gates_.size()));
  gates_[static_cast<std::size_t>(dff)].a = data;
}

std::size_t Netlist::combinational_gates() const {
  std::size_t count = 0;
  for (const Gate& g : gates_) {
    count += g.kind_tag == GateKind::And || g.kind_tag == GateKind::Or ||
             g.kind_tag == GateKind::Xor || g.kind_tag == GateKind::Not;
  }
  return count;
}

std::size_t Netlist::flip_flops() const {
  std::size_t count = 0;
  for (const Gate& g : gates_) count += g.kind_tag == GateKind::Dff;
  return count;
}

std::size_t Netlist::gate_equivalents() const {
  return combinational_gates() + flip_flops() * kDffGates;
}

GateKind Netlist::kind(int id) const {
  BRSMN_EXPECTS(id >= 0 && id < static_cast<int>(gates_.size()));
  return gates_[static_cast<std::size_t>(id)].kind_tag;
}

Netlist::Sim::Sim(const Netlist& netlist)
    : netlist_(&netlist),
      values_(netlist.size(), false),
      dff_state_(netlist.size(), false) {
  for (std::size_t i = 0; i < netlist.gates_.size(); ++i) {
    if (netlist.gates_[i].kind_tag == GateKind::Dff) {
      BRSMN_EXPECTS_MSG(netlist.gates_[i].a >= 0,
                        "DFF left unconnected before simulation");
    }
  }
}

void Netlist::Sim::set_input(int id, bool v) {
  BRSMN_EXPECTS(netlist_->kind(id) == GateKind::Input);
  values_[static_cast<std::size_t>(id)] = v;
}

void Netlist::Sim::step() {
  const auto& gates = netlist_->gates_;
  // Combinational evaluation in creation order (operands always refer to
  // earlier gates); DFF gates present last cycle's state.
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const Gate& g = gates[i];
    switch (g.kind_tag) {
      case GateKind::Input: break;  // externally driven
      case GateKind::Dff: values_[i] = dff_state_[i]; break;
      case GateKind::And:
        values_[i] = values_[static_cast<std::size_t>(g.a)] &&
                     values_[static_cast<std::size_t>(g.b)];
        break;
      case GateKind::Or:
        values_[i] = values_[static_cast<std::size_t>(g.a)] ||
                     values_[static_cast<std::size_t>(g.b)];
        break;
      case GateKind::Xor:
        values_[i] = values_[static_cast<std::size_t>(g.a)] !=
                     values_[static_cast<std::size_t>(g.b)];
        break;
      case GateKind::Not:
        values_[i] = !values_[static_cast<std::size_t>(g.a)];
        break;
    }
  }
  // Clock edge: latch every DFF's data input.
  for (std::size_t i = 0; i < gates.size(); ++i) {
    if (gates[i].kind_tag == GateKind::Dff) {
      dff_state_[i] = values_[static_cast<std::size_t>(gates[i].a)];
    }
  }
}

bool Netlist::Sim::value(int id) const {
  BRSMN_EXPECTS(id >= 0 && id < static_cast<int>(values_.size()));
  return values_[static_cast<std::size_t>(id)];
}

FullAdderPorts build_full_adder(Netlist& nl) {
  FullAdderPorts p;
  p.a = nl.add_input();
  p.b = nl.add_input();
  p.cin = nl.add_input();
  const int axb = nl.add_xor(p.a, p.b);
  p.sum = nl.add_xor(axb, p.cin);
  const int ab = nl.add_and(p.a, p.b);
  const int cin_axb = nl.add_and(p.cin, axb);
  p.carry = nl.add_or(ab, cin_axb);
  return p;
}

SerialAdderPorts build_bit_serial_adder(Netlist& nl) {
  SerialAdderPorts p;
  p.a = nl.add_input();
  p.b = nl.add_input();
  const int carry_ff = nl.add_dff();
  const int axb = nl.add_xor(p.a, p.b);
  p.sum = nl.add_xor(axb, carry_ff);
  const int ab = nl.add_and(p.a, p.b);
  const int c_axb = nl.add_and(carry_ff, axb);
  const int carry_next = nl.add_or(ab, c_axb);
  nl.connect_dff(carry_ff, carry_next);
  return p;
}

namespace {

/// Build a bit-serial adder whose operands are existing gates (not fresh
/// inputs), used for the internal tree nodes.
int build_internal_adder(Netlist& nl, int a, int b) {
  const int carry_ff = nl.add_dff();
  const int axb = nl.add_xor(a, b);
  const int sum = nl.add_xor(axb, carry_ff);
  const int ab = nl.add_and(a, b);
  const int c_axb = nl.add_and(carry_ff, axb);
  const int carry_next = nl.add_or(ab, c_axb);
  nl.connect_dff(carry_ff, carry_next);
  // Output register: the pipeline stage boundary.
  const int out_ff = nl.add_dff();
  nl.connect_dff(out_ff, sum);
  return out_ff;
}

}  // namespace

AdderTreePorts build_adder_tree(Netlist& nl, std::size_t leaves) {
  BRSMN_EXPECTS(is_pow2(leaves) && leaves >= 2);
  AdderTreePorts ports;
  ports.leaves.reserve(leaves);
  std::vector<int> level;
  for (std::size_t i = 0; i < leaves; ++i) {
    const int in = nl.add_input();
    ports.leaves.push_back(in);
    level.push_back(in);
  }
  while (level.size() > 1) {
    std::vector<int> next;
    next.reserve(level.size() / 2);
    for (std::size_t b = 0; b < level.size() / 2; ++b) {
      next.push_back(build_internal_adder(nl, level[2 * b],
                                          level[2 * b + 1]));
    }
    level = std::move(next);
  }
  ports.root = level.front();
  return ports;
}

}  // namespace brsmn::hw
