#include "hw/embedded_tree.hpp"

#include "common/contracts.hpp"

namespace brsmn::hw {

SwitchCoord forward_node_switch(const topo::RbnTopology& topo, int stage,
                                std::size_t block) {
  BRSMN_EXPECTS(stage >= 1 && stage <= topo.stages());
  BRSMN_EXPECTS(block < topo.blocks_in_stage(stage));
  const std::size_t base = topo.block_base(stage, block);
  return {stage, topo.stage_switch(stage, base)};
}

SwitchCoord backward_node_switch(const topo::RbnTopology& topo, int stage,
                                 std::size_t block) {
  BRSMN_EXPECTS(stage >= 1 && stage <= topo.stages());
  BRSMN_EXPECTS(block < topo.blocks_in_stage(stage));
  const std::size_t half = topo.block_size(stage) / 2;
  const std::size_t base = topo.block_base(stage, block);
  return {stage, topo.stage_switch(stage, base + half - 1)};
}

EmbeddingLoad embedding_load(const topo::RbnTopology& topo) {
  EmbeddingLoad load;
  const auto stages = static_cast<std::size_t>(topo.stages());
  load.forward_nodes.assign(stages,
                            std::vector<std::size_t>(topo.switches_per_stage(), 0));
  load.backward_nodes = load.forward_nodes;
  for (int stage = 1; stage <= topo.stages(); ++stage) {
    for (std::size_t block = 0; block < topo.blocks_in_stage(stage);
         ++block) {
      const SwitchCoord f = forward_node_switch(topo, stage, block);
      const SwitchCoord b = backward_node_switch(topo, stage, block);
      ++load.forward_nodes[static_cast<std::size_t>(f.stage - 1)]
                          [f.switch_index];
      ++load.backward_nodes[static_cast<std::size_t>(b.stage - 1)]
                           [b.switch_index];
    }
  }
  return load;
}

}  // namespace brsmn::hw
