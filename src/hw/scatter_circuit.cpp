#include "hw/scatter_circuit.hpp"

#include "common/bits.hpp"
#include "common/contracts.hpp"
#include "core/merge_lemmas.hpp"
#include "core/stats.hpp"
#include "hw/bit_serial.hpp"

namespace brsmn::hw {

namespace {

/// Bit-serial a + b over `bits` cycles (backward-phase node hardware).
std::uint64_t serial_add(std::uint64_t a, std::uint64_t b, int bits) {
  BitSerialAdder adder;
  std::uint64_t sum = 0;
  for (int i = 0; i < bits; ++i) {
    if (adder.step((a >> i) & 1u, (b >> i) & 1u)) {
      sum |= std::uint64_t{1} << i;
    }
  }
  return sum;
}

/// Bit-serial a - b; `underflow` reports a < b (the subtractor's final
/// borrow). Forward-phase elimination hardware.
std::uint64_t serial_sub(std::uint64_t a, std::uint64_t b, int bits,
                         bool& underflow) {
  BitSerialSubtractor sub;
  std::uint64_t diff = 0;
  for (int i = 0; i < bits; ++i) {
    if (sub.step((a >> i) & 1u, (b >> i) & 1u)) {
      diff |= std::uint64_t{1} << i;
    }
  }
  underflow = sub.borrow();
  return diff;
}

/// Forward node value as the hardware sees it: one type bit (true = ε
/// dominates) and the surplus count.
struct NodeVal {
  bool eps_type = true;
  std::uint64_t surplus = 0;
};

}  // namespace

GateLevelScatter::GateLevelScatter(std::size_t n)
    : n_(n), m_(log2_exact(n)) {
  BRSMN_EXPECTS(n >= 2);
}

GateLevelScatter::Result GateLevelScatter::compute(
    const std::vector<Tag>& tags, std::size_t s_root) const {
  BRSMN_EXPECTS(tags.size() == n_);
  BRSMN_EXPECTS(s_root < n_);
  const int bits = m_ + 1;

  // Forward phase. Leaves decode their tag's Table 1 bits with the
  // Section 7.2 counting predicates.
  std::vector<std::vector<NodeVal>> node(static_cast<std::size_t>(m_) + 1);
  node[0].resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    const std::uint8_t enc = encode(tags[i]);
    BRSMN_EXPECTS(tags[i] == Tag::Zero || tags[i] == Tag::One ||
                  tags[i] == Tag::Alpha || tags[i] == Tag::Eps);
    if (counts_as_alpha(enc)) {
      node[0][i] = {false, 1};
    } else if (counts_as_eps(enc)) {
      node[0][i] = {true, 1};
    } else {
      node[0][i] = {true, 0};  // χ leaf: no surplus, ε label by convention
    }
  }
  for (int j = 1; j <= m_; ++j) {
    const auto& child = node[static_cast<std::size_t>(j - 1)];
    auto& cur = node[static_cast<std::size_t>(j)];
    cur.resize(child.size() / 2);
    for (std::size_t b = 0; b < cur.size(); ++b) {
      const NodeVal& c0 = child[2 * b];
      const NodeVal& c1 = child[2 * b + 1];
      if (c0.eps_type == c1.eps_type) {
        cur[b] = {c0.eps_type, serial_add(c0.surplus, c1.surplus, bits)};
      } else {
        // Both subtractions run in parallel; the borrow selects.
        bool borrow01 = false, borrow10 = false;
        const std::uint64_t d01 =
            serial_sub(c0.surplus, c1.surplus, bits, borrow01);
        const std::uint64_t d10 =
            serial_sub(c1.surplus, c0.surplus, bits, borrow10);
        cur[b] = borrow01 ? NodeVal{c1.eps_type, d10}
                          : NodeVal{c0.eps_type, d01};
        BRSMN_ENSURES(!(borrow01 && borrow10));
      }
    }
  }

  // Backward + switch-setting phases (Table 4 with serial arithmetic).
  Result result;
  result.settings.assign(static_cast<std::size_t>(m_), {});
  std::vector<std::uint64_t> start{s_root};
  for (int j = m_; j >= 1; --j) {
    const std::size_t n_prime = std::size_t{1} << j;
    const std::size_t half = n_prime / 2;
    auto& stage = result.settings[static_cast<std::size_t>(j - 1)];
    stage.assign(n_ / 2, SwitchSetting::Parallel);
    std::vector<std::uint64_t> next(start.size() * 2);
    for (std::size_t b = 0; b < start.size(); ++b) {
      const std::uint64_t s = start[b];
      const NodeVal& c0 = node[static_cast<std::size_t>(j - 1)][2 * b];
      const NodeVal& c1 = node[static_cast<std::size_t>(j - 1)][2 * b + 1];
      std::vector<SwitchSetting> block_settings;
      std::uint64_t s0 = 0, s1 = 0;
      if (c0.eps_type == c1.eps_type) {
        const std::uint64_t sum = serial_add(s, c0.surplus, bits);
        s0 = s & (half - 1);
        s1 = sum & (half - 1);
        const bool bbit = (sum >> (j - 1)) & 1u;
        const SwitchSetting run =
            bbit ? SwitchSetting::Cross : SwitchSetting::Parallel;
        block_settings =
            binary_compact_setting(n_prime, 0, s1, opposite_unicast(run),
                                   run);
      } else {
        const NodeVal& parent = node[static_cast<std::size_t>(j)][b];
        const std::uint64_t l = parent.surplus;
        const std::uint64_t sum = serial_add(s, l, bits);
        // α sits where the non-ε-typed child is.
        const SwitchSetting bcast = !c0.eps_type
                                        ? SwitchSetting::UpperBcast
                                        : SwitchSetting::LowerBcast;
        std::uint64_t run_start = 0, run_len = 0;
        SwitchSetting ucast = SwitchSetting::Parallel;
        // l0 >= l1 iff the parent kept c0's type (the forward borrow).
        const bool upper_longer = parent.eps_type == c0.eps_type;
        if (upper_longer) {
          s0 = s & (half - 1);
          s1 = sum & (half - 1);
          run_start = s1;
          run_len = c1.surplus;
          ucast = SwitchSetting::Parallel;
        } else {
          s0 = sum & (half - 1);
          s1 = s & (half - 1);
          run_start = s0;
          run_len = c0.surplus;
          ucast = SwitchSetting::Cross;
        }
        block_settings = lemmas::elimination_settings(
            n_prime, s, l, run_start, run_len, ucast, bcast);
      }
      next[2 * b] = s0;
      next[2 * b + 1] = s1;
      for (std::size_t i = 0; i < half; ++i) {
        stage[b * half + i] = block_settings[i];
      }
    }
    start = std::move(next);
  }

  const NodeVal& root = node[static_cast<std::size_t>(m_)][0];
  result.root = {root.eps_type ? Tag::Eps : Tag::Alpha,
                 static_cast<std::size_t>(root.surplus)};
  result.cycles = config_sweep_delay(m_);
  return result;
}

}  // namespace brsmn::hw
