// Gate-level building blocks of the self-routing circuitry
// (paper Section 7.2, Fig. 12).
//
// The distributed algorithms' forward phases are sums over trees; the
// paper implements each tree node as a single 1-bit full adder with a
// carry flip-flop, fed least-significant-bit first, so a log n-bit adder
// shrinks to one bit of hardware and the whole tree is a pipeline: node
// outputs lag their inputs by one cycle, and the first result bit leaves
// the root after depth cycles.
#pragma once

#include <cstddef>
#include <cstdint>

namespace brsmn::hw {

/// Gate cost constants used for calibration of model::GateParams: a full
/// adder is two XORs, two ANDs and an OR; a D flip-flop is ~4 NAND
/// equivalents.
inline constexpr std::size_t kFullAdderGates = 5;
inline constexpr std::size_t kDffGates = 4;

/// Combinational 1-bit full adder.
struct FullAdderOut {
  bool sum;
  bool carry;
};
constexpr FullAdderOut full_adder(bool a, bool b, bool cin) {
  return {(a != b) != cin, (a && b) || (cin && (a != b))};
}

/// A 1-bit adder used in pipelined fashion (Fig. 12): the carry is
/// registered, so feeding two operands LSB-first one bit per cycle
/// produces their sum LSB-first, one bit per cycle.
class BitSerialAdder {
 public:
  /// Clock in one bit of each operand; returns the sum bit.
  bool step(bool a, bool b) {
    const FullAdderOut out = full_adder(a, b, carry_);
    carry_ = out.carry;
    return out.sum;
  }

  void reset() { carry_ = false; }

  bool carry() const { return carry_; }

  /// Hardware cost: the adder plus its carry register.
  static constexpr std::size_t gate_count() {
    return kFullAdderGates + kDffGates;
  }

 private:
  bool carry_ = false;
};

/// Combinational 1-bit full subtractor (a - b - borrow_in).
struct FullSubtractorOut {
  bool diff;
  bool borrow;
};
constexpr FullSubtractorOut full_subtractor(bool a, bool b, bool bin) {
  return {(a != b) != bin, (!a && b) || (!(a != b) && bin)};
}

/// A 1-bit subtractor used in pipelined fashion, the dual of
/// BitSerialAdder: streaming two operands LSB-first yields a - b
/// LSB-first; after the last bit, borrow() set means a < b. The scatter
/// network's forward phase uses a pair of these to compute |l0 - l1| and
/// the dominating type (ε/α-elimination, Table 4).
class BitSerialSubtractor {
 public:
  bool step(bool a, bool b) {
    const FullSubtractorOut out = full_subtractor(a, b, borrow_);
    borrow_ = out.borrow;
    return out.diff;
  }

  void reset() { borrow_ = false; }

  bool borrow() const { return borrow_; }

  static constexpr std::size_t gate_count() {
    return kFullAdderGates + kDffGates;
  }

 private:
  bool borrow_ = false;
};

}  // namespace brsmn::hw
