// Cycle-accurate pipelined adder tree (paper Section 7.2).
//
// The forward phase of every distributed routing algorithm (Tables 3, 4,
// 6) computes, for each tree node, the sum of a 0/1 count over its
// leaves. In hardware each node is one BitSerialAdder plus an output
// register; values stream LSB-first, so the tree is a pipeline of depth
// log2(leaves) and the complete root value (bit width W + depth) drains
// in depth + W + depth cycles — the closed form behind
// config_sweep_delay().
//
// This module simulates that pipeline cycle by cycle and is
// cross-checked against the behavioral algorithms in tests/test_hw.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hw/bit_serial.hpp"

namespace brsmn::hw {

class PipelinedAdderTree {
 public:
  /// A tree over `leaves` inputs (a power of two >= 2).
  explicit PipelinedAdderTree(std::size_t leaves);

  std::size_t leaves() const noexcept { return leaves_; }

  /// Pipeline depth: log2(leaves).
  int depth() const noexcept { return depth_; }

  /// Gate cost: one bit-serial adder and one output flip-flop per
  /// internal node (leaves - 1 of them).
  std::size_t gate_count() const noexcept;

  struct Result {
    /// node_sums[j] holds the sums of all sub-trees of height j:
    /// node_sums[0] echoes the leaf values, node_sums[depth][0] is the
    /// total. These are exactly the l-values of the forward phases.
    std::vector<std::vector<std::uint64_t>> node_sums;
    /// Cycles until the root's last bit was emitted.
    std::size_t cycles = 0;
  };

  /// Stream the leaf values (each of `input_bits` significant bits)
  /// through the pipeline and collect every node's sum.
  Result run(const std::vector<std::uint64_t>& leaf_values,
             int input_bits) const;

  /// The closed-form cycle count run() reports:
  /// depth (fill) + input_bits + depth (carry growth) output bits.
  std::size_t expected_cycles(int input_bits) const;

 private:
  std::size_t leaves_;
  int depth_;
};

}  // namespace brsmn::hw
