// Structural gate netlists for the routing circuitry.
//
// The cost model charges per-switch gate constants; this module makes
// those constants *auditable* by building the circuits from actual
// two-input gates and flip-flops and simulating them cycle by cycle.
// tests/test_netlist.cpp proves (1) the netlist full adder / bit-serial
// adder / pipelined adder tree behave identically to the behavioral
// models, and (2) their gate censuses equal the constants
// (kFullAdderGates, kDffGates) the Table 2 cost column is built from.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/contracts.hpp"

namespace brsmn::hw {

enum class GateKind : std::uint8_t {
  Input,  ///< externally driven
  And,
  Or,
  Xor,
  Not,
  Dff,  ///< state element; output is last cycle's latched value
};

/// A flat netlist: gates reference earlier gates (combinational) or any
/// gate (a DFF's data input may be connected after creation, enabling
/// feedback loops through state).
class Netlist {
 public:
  int add_input();
  int add_and(int a, int b);
  int add_or(int a, int b);
  int add_xor(int a, int b);
  int add_not(int a);
  /// Create a flip-flop with an unconnected data input.
  int add_dff();
  /// Connect a DFF's data input (may reference any gate).
  void connect_dff(int dff, int data);

  std::size_t size() const noexcept { return gates_.size(); }

  /// Census: two-input/inverter combinational gates.
  std::size_t combinational_gates() const;
  /// Census: flip-flops.
  std::size_t flip_flops() const;
  /// Gate-equivalent count with kDffGates per flip-flop — directly
  /// comparable to the cost-model constants.
  std::size_t gate_equivalents() const;

  GateKind kind(int id) const;

  /// Cycle-accurate evaluator for one netlist.
  class Sim {
   public:
    explicit Sim(const Netlist& netlist);
    /// Drive an input for the current cycle.
    void set_input(int id, bool v);
    /// Evaluate all combinational gates, then clock every DFF.
    void step();
    /// Value of any gate after the last step() (DFFs: latched state).
    bool value(int id) const;

   private:
    const Netlist* netlist_;
    std::vector<bool> values_;
    std::vector<bool> dff_state_;
  };

 private:
  struct Gate {
    GateKind kind_tag = GateKind::Input;
    int a = -1;
    int b = -1;
  };
  std::vector<Gate> gates_;
  int check_comb_operand(int id) const;
};

/// A 1-bit full adder built from 5 gates (2 XOR, 2 AND, 1 OR).
struct FullAdderPorts {
  int a = -1, b = -1, cin = -1;  ///< inputs
  int sum = -1, carry = -1;      ///< outputs
};
FullAdderPorts build_full_adder(Netlist& nl);

/// A bit-serial adder: full adder + carry flip-flop (Fig. 12).
struct SerialAdderPorts {
  int a = -1, b = -1;  ///< stream inputs
  int sum = -1;        ///< combinational sum bit
};
SerialAdderPorts build_bit_serial_adder(Netlist& nl);

/// The pipelined adder tree over `leaves` inputs: each internal node is
/// a bit-serial adder plus an output flip-flop.
struct AdderTreePorts {
  std::vector<int> leaves;  ///< stream inputs
  int root = -1;            ///< root node's registered output
};
AdderTreePorts build_adder_tree(Netlist& nl, std::size_t leaves);

}  // namespace brsmn::hw
