#include "hw/adder_tree.hpp"

#include "common/bits.hpp"
#include "common/contracts.hpp"

namespace brsmn::hw {

PipelinedAdderTree::PipelinedAdderTree(std::size_t leaves)
    : leaves_(leaves), depth_(log2_exact(leaves)) {
  BRSMN_EXPECTS(leaves >= 2);
}

std::size_t PipelinedAdderTree::gate_count() const noexcept {
  return (leaves_ - 1) * (BitSerialAdder::gate_count() + kDffGates);
}

std::size_t PipelinedAdderTree::expected_cycles(int input_bits) const {
  // Pipeline fill (depth) + drain of the root's input_bits + depth sum
  // bits.
  return static_cast<std::size_t>(depth_) +
         static_cast<std::size_t>(input_bits) +
         static_cast<std::size_t>(depth_);
}

PipelinedAdderTree::Result PipelinedAdderTree::run(
    const std::vector<std::uint64_t>& leaf_values, int input_bits) const {
  BRSMN_EXPECTS(leaf_values.size() == leaves_);
  BRSMN_EXPECTS(input_bits >= 1 && input_bits + depth_ <= 63);
  for (const auto v : leaf_values) {
    BRSMN_EXPECTS((v >> input_bits) == 0);
  }

  const int out_bits = input_bits + depth_;

  // Synchronous state: one carry (inside the adder) and one output
  // register bit per internal node, indexed [level-1][node].
  std::vector<std::vector<BitSerialAdder>> adders(
      static_cast<std::size_t>(depth_));
  std::vector<std::vector<bool>> out_reg(static_cast<std::size_t>(depth_));
  for (int j = 1; j <= depth_; ++j) {
    adders[static_cast<std::size_t>(j - 1)].resize(leaves_ >> j);
    out_reg[static_cast<std::size_t>(j - 1)].assign(leaves_ >> j, false);
  }

  Result result;
  result.node_sums.assign(static_cast<std::size_t>(depth_) + 1, {});
  result.node_sums[0] = leaf_values;
  for (int j = 1; j <= depth_; ++j) {
    result.node_sums[static_cast<std::size_t>(j)].assign(leaves_ >> j, 0);
  }

  const std::size_t total_ticks = expected_cycles(input_bits);
  for (std::size_t t = 0; t < total_ticks; ++t) {
    // Compute every node's next output bit from the *current* registers
    // (leaf bits arrive combinationally at level 1).
    std::vector<std::vector<bool>> next(out_reg);
    for (int j = 1; j <= depth_; ++j) {
      auto& level_adders = adders[static_cast<std::size_t>(j - 1)];
      for (std::size_t b = 0; b < level_adders.size(); ++b) {
        bool in0 = false, in1 = false;
        if (j == 1) {
          const std::uint64_t v0 = leaf_values[2 * b];
          const std::uint64_t v1 = leaf_values[2 * b + 1];
          in0 = t < static_cast<std::size_t>(input_bits) && ((v0 >> t) & 1u);
          in1 = t < static_cast<std::size_t>(input_bits) && ((v1 >> t) & 1u);
        } else {
          in0 = out_reg[static_cast<std::size_t>(j - 2)][2 * b];
          in1 = out_reg[static_cast<std::size_t>(j - 2)][2 * b + 1];
        }
        next[static_cast<std::size_t>(j - 1)][b] =
            level_adders[b].step(in0, in1);
      }
    }
    out_reg.swap(next);

    // Collect: after tick t, the level-j registers hold bit t-(j-1) of
    // their node's sum.
    for (int j = 1; j <= depth_; ++j) {
      const auto bit_index =
          static_cast<std::ptrdiff_t>(t) - static_cast<std::ptrdiff_t>(j - 1);
      if (bit_index < 0 || bit_index >= out_bits) continue;
      for (std::size_t b = 0; b < out_reg[static_cast<std::size_t>(j - 1)].size();
           ++b) {
        if (out_reg[static_cast<std::size_t>(j - 1)][b]) {
          result.node_sums[static_cast<std::size_t>(j)][b] |=
              std::uint64_t{1} << bit_index;
        }
      }
    }
  }
  result.cycles = total_ticks;
  return result;
}

}  // namespace brsmn::hw
