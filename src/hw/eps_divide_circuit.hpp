// The gate-level ε-dividing circuit (paper Table 6 + Section 7.2).
//
// Forward phase per tree node: two bit-serial adders (one summing ε
// counts — the b0∧b1 predicate — and one summing real 1s — the b2 bit).
// Backward phase per node: a subtractor-with-borrow implements
// min(n_ε0, n'_ε) and the remaining three updates are serial
// subtractions. Leaves read a single budget bit to pick ε0 or ε1.
//
// Tested to produce exactly divide_eps()'s output in the
// config_sweep_delay cycle budget.
#pragma once

#include <cstddef>
#include <vector>

#include "core/tag.hpp"

namespace brsmn::hw {

class GateLevelEpsDivide {
 public:
  explicit GateLevelEpsDivide(std::size_t n);

  std::size_t size() const noexcept { return n_; }

  struct Result {
    std::vector<Tag> divided;  ///< ε replaced by ε0/ε1, identical to divide_eps
    std::size_t cycles = 0;
  };

  /// Run the circuit on tags in {0, 1, ε} with at most n/2 zeros and
  /// at most n/2 ones.
  Result compute(const std::vector<Tag>& tags) const;

 private:
  std::size_t n_;
  int m_;
};

}  // namespace brsmn::hw
