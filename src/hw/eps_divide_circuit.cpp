#include "hw/eps_divide_circuit.hpp"

#include "common/bits.hpp"
#include "common/contracts.hpp"
#include "core/stats.hpp"
#include "hw/bit_serial.hpp"

namespace brsmn::hw {

namespace {

std::uint64_t serial_add(std::uint64_t a, std::uint64_t b, int bits) {
  BitSerialAdder adder;
  std::uint64_t sum = 0;
  for (int i = 0; i < bits; ++i) {
    if (adder.step((a >> i) & 1u, (b >> i) & 1u)) {
      sum |= std::uint64_t{1} << i;
    }
  }
  return sum;
}

std::uint64_t serial_sub(std::uint64_t a, std::uint64_t b, int bits,
                         bool* underflow = nullptr) {
  BitSerialSubtractor sub;
  std::uint64_t diff = 0;
  for (int i = 0; i < bits; ++i) {
    if (sub.step((a >> i) & 1u, (b >> i) & 1u)) {
      diff |= std::uint64_t{1} << i;
    }
  }
  if (underflow) *underflow = sub.borrow();
  return diff;
}

/// min(a, b) in hardware: subtract and let the borrow drive a mux.
std::uint64_t serial_min(std::uint64_t a, std::uint64_t b, int bits) {
  bool borrow = false;
  serial_sub(a, b, bits, &borrow);
  return borrow ? a : b;  // borrow means a < b
}

}  // namespace

GateLevelEpsDivide::GateLevelEpsDivide(std::size_t n)
    : n_(n), m_(log2_exact(n)) {
  BRSMN_EXPECTS(n >= 2);
}

GateLevelEpsDivide::Result GateLevelEpsDivide::compute(
    const std::vector<Tag>& tags) const {
  BRSMN_EXPECTS(tags.size() == n_);
  const int bits = m_ + 1;

  // Forward phase: per node, ε count (b0 AND b1 of the Table 1 encoding)
  // and real-1 count (b2).
  struct Fwd {
    std::uint64_t eps = 0;
    std::uint64_t ones = 0;
  };
  std::vector<std::vector<Fwd>> fwd(static_cast<std::size_t>(m_) + 1);
  fwd[0].resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    BRSMN_EXPECTS(tags[i] == Tag::Zero || tags[i] == Tag::One ||
                  tags[i] == Tag::Eps);
    const std::uint8_t enc = encode(tags[i]);
    fwd[0][i] = {counts_as_eps(enc) ? std::uint64_t{1} : 0,
                 tags[i] == Tag::One ? std::uint64_t{1} : 0};
  }
  for (int j = 1; j <= m_; ++j) {
    const auto& child = fwd[static_cast<std::size_t>(j - 1)];
    auto& cur = fwd[static_cast<std::size_t>(j)];
    cur.resize(child.size() / 2);
    for (std::size_t b = 0; b < cur.size(); ++b) {
      cur[b] = {serial_add(child[2 * b].eps, child[2 * b + 1].eps, bits),
                serial_add(child[2 * b].ones, child[2 * b + 1].ones, bits)};
    }
  }

  // Backward phase: root budget, then the Table 6 updates (erratum
  // fixed, see DESIGN.md) with serial subtractors and a borrow-mux min.
  const Fwd root = fwd[static_cast<std::size_t>(m_)][0];
  bool underflow = false;
  const std::uint64_t root_eps1 =
      serial_sub(n_ / 2, root.ones, bits, &underflow);
  BRSMN_EXPECTS_MSG(!underflow, "more than n/2 ones");
  const std::uint64_t root_eps0 =
      serial_sub(root.eps, root_eps1, bits, &underflow);
  BRSMN_EXPECTS_MSG(!underflow, "more than n/2 zeros");

  struct Bwd {
    std::uint64_t eps0 = 0;
    std::uint64_t eps1 = 0;
  };
  std::vector<std::vector<Bwd>> bwd(static_cast<std::size_t>(m_) + 1);
  for (int j = 0; j <= m_; ++j) {
    bwd[static_cast<std::size_t>(j)].resize(n_ >> j);
  }
  bwd[static_cast<std::size_t>(m_)][0] = {root_eps0, root_eps1};
  for (int j = m_; j >= 1; --j) {
    for (std::size_t b = 0; b < (n_ >> j); ++b) {
      const Bwd cur = bwd[static_cast<std::size_t>(j)][b];
      const std::uint64_t upper_eps =
          fwd[static_cast<std::size_t>(j - 1)][2 * b].eps;
      const std::uint64_t lower_eps =
          fwd[static_cast<std::size_t>(j - 1)][2 * b + 1].eps;
      Bwd up, low;
      up.eps0 = serial_min(cur.eps0, upper_eps, bits);
      up.eps1 = serial_sub(upper_eps, up.eps0, bits);
      low.eps0 = serial_sub(cur.eps0, up.eps0, bits);
      low.eps1 = serial_sub(lower_eps, low.eps0, bits);
      bwd[static_cast<std::size_t>(j - 1)][2 * b] = up;
      bwd[static_cast<std::size_t>(j - 1)][2 * b + 1] = low;
    }
  }

  Result result;
  result.divided = tags;
  for (std::size_t i = 0; i < n_; ++i) {
    if (tags[i] != Tag::Eps) continue;
    result.divided[i] = bwd[0][i].eps0 ? Tag::Eps0 : Tag::Eps1;
  }
  result.cycles = config_sweep_delay(m_);
  return result;
}

}  // namespace brsmn::hw
